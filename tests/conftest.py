"""Shared fixtures: deterministic RNGs and small reusable workloads.

Session-scoped fixtures cache the expensive artefacts (a small community
pipeline run) so the full suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LocalAssemblyConfig
from repro.sequence.community import Community, CommunityDesign, sample_paired_reads
from repro.sequence.error_model import IlluminaErrorModel
from repro.sequence.genomes import GenomeSpec


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_community() -> Community:
    rng = np.random.default_rng(777)
    design = CommunityDesign(
        n_genomes=3,
        genome_spec=GenomeSpec(length=8000, repeat_fraction=0.02, shared_fraction=0.02),
        abundance_sigma=0.5,
        error_model=IlluminaErrorModel(rate_start=0.001, rate_end=0.005),
    )
    return Community.generate(design, rng)


@pytest.fixture(scope="session")
def small_reads(small_community):
    rng = np.random.default_rng(778)
    # ~25x coverage over 3x8kb genomes
    return sample_paired_reads(small_community, 2000, rng)


@pytest.fixture(scope="session")
def small_assembly(small_reads):
    """One CPU-mode pipeline run shared by integration tests."""
    from repro.pipeline import PipelineConfig, run_pipeline

    cfg = PipelineConfig(local_assembly_mode="cpu")
    return run_pipeline(small_reads, cfg)


@pytest.fixture
def la_config() -> LocalAssemblyConfig:
    return LocalAssemblyConfig(k_init=21, max_walk_len=150)
