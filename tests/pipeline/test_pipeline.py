"""End-to-end pipeline integration tests."""

import numpy as np
import pytest

from repro.analysis.stats import assembly_stats, genome_fraction
from repro.pipeline import PipelineConfig, run_pipeline
from repro.pipeline.stages import STAGES
from repro.sequence.community import Community, CommunityDesign, sample_paired_reads
from repro.sequence.error_model import PERFECT
from repro.sequence.genomes import GenomeSpec


class TestSmallAssembly:
    def test_contigs_produced(self, small_assembly):
        assert len(small_assembly.contigs) > 0
        assert small_assembly.contigs.total_bases() > 5000

    def test_stage_times_recorded(self, small_assembly):
        recorded = set(small_assembly.times.seconds)
        assert {"merge reads", "k-mer analysis", "contig generation",
                "alignment", "local assembly"} <= recorded
        assert all(v >= 0 for v in small_assembly.times.seconds.values())
        assert set(recorded) <= set(STAGES)

    def test_local_assembly_extended_contigs(self, small_assembly):
        assert small_assembly.local_assembly.n_extended > 0
        assert small_assembly.local_assembly.total_extension_bases > 0

    def test_scaffolds_cover_contigs(self, small_assembly):
        sc = small_assembly.scaffolds
        assert sc is not None
        ids = sorted(cid for s in sc.scaffolds for cid in s.contig_ids)
        assert ids == sorted(c.cid for c in small_assembly.contigs)

    def test_summary_renders(self, small_assembly):
        text = small_assembly.summary()
        assert "contigs:" in text and "stage times:" in text

    def test_genomes_recovered(self, small_assembly, small_community):
        contigs = small_assembly.contigs.sequences()
        fractions = [
            genome_fraction(contigs, g.seq, k=31) for g in small_community.genomes
        ]
        # abundant genomes should be mostly recovered
        assert max(fractions) > 0.7

    def test_n50_reasonable(self, small_assembly):
        stats = assembly_stats(small_assembly.contigs.sequences())
        assert stats.n50 > 100


class TestGpuCpuEquivalence:
    def test_gpu_pipeline_matches_cpu(self):
        """The headline invariant: swapping local assembly to the GPU
        changes nothing about the assembly itself."""
        rng = np.random.default_rng(4242)
        design = CommunityDesign(
            n_genomes=2,
            genome_spec=GenomeSpec(length=5000, repeat_fraction=0.02, shared_fraction=0.0),
            abundance_sigma=0.3,
        )
        comm = Community.generate(design, rng)
        reads = sample_paired_reads(comm, 1200, rng)
        cpu = run_pipeline(reads, PipelineConfig(local_assembly_mode="cpu"))
        gpu = run_pipeline(reads, PipelineConfig(local_assembly_mode="gpu"))
        assert [c.seq for c in cpu.contigs] == [c.seq for c in gpu.contigs]
        assert gpu.local_assembly.gpu_report is not None
        assert gpu.local_assembly.gpu_report.kernel_time_s > 0


class TestPerfectData:
    def test_clean_community_assembles_well(self):
        rng = np.random.default_rng(99)
        design = CommunityDesign(
            n_genomes=1,
            genome_spec=GenomeSpec(length=6000, repeat_fraction=0.0, shared_fraction=0.0),
            abundance_sigma=0.0,
            error_model=PERFECT,
        )
        comm = Community.generate(design, rng)
        reads = sample_paired_reads(comm, 1500, rng)
        res = run_pipeline(reads, PipelineConfig())
        assert genome_fraction(res.contigs.sequences(), comm.genomes[0].seq) > 0.95
        stats = assembly_stats(res.contigs.sequences())
        assert stats.n50 > 1000


class TestConfig:
    def test_even_k_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(k_series=(22,))

    def test_empty_k_series_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(k_series=())

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(local_assembly_mode="tpu")

    def test_multi_round_runs(self):
        rng = np.random.default_rng(5)
        design = CommunityDesign(
            n_genomes=1,
            genome_spec=GenomeSpec(length=4000, repeat_fraction=0, shared_fraction=0),
            error_model=PERFECT,
        )
        comm = Community.generate(design, rng)
        reads = sample_paired_reads(comm, 800, rng)
        res = run_pipeline(reads, PipelineConfig(k_series=(21, 33), run_scaffolding=False))
        assert len(res.contigs) >= 1

    def test_scaffolding_can_be_disabled(self, small_reads):
        res = run_pipeline(small_reads, PipelineConfig(run_scaffolding=False))
        assert res.scaffolds is None
