"""Tests for extension classification (UNIQUE / FORK / DEADEND)."""

import numpy as np
import pytest

from repro.pipeline.kmer_analysis import (
    ExtVerdict,
    analyze_kmers,
    classify_extensions,
)
from repro.sequence.read import ReadBatch


class TestClassify:
    def test_unique(self):
        counts = np.array([[5, 0, 0, 0, 2]])
        v, b = classify_extensions(counts, min_depth=2)
        assert v[0] == ExtVerdict.UNIQUE and b[0] == 0

    def test_fork(self):
        counts = np.array([[5, 4, 0, 0, 0]])
        v, _ = classify_extensions(counts, min_depth=2)
        assert v[0] == ExtVerdict.FORK

    def test_deadend(self):
        counts = np.array([[1, 1, 0, 0, 9]])
        v, _ = classify_extensions(counts, min_depth=2)
        assert v[0] == ExtVerdict.DEADEND

    def test_none_column_never_votes(self):
        counts = np.array([[0, 0, 0, 0, 100]])
        v, _ = classify_extensions(counts, min_depth=2)
        assert v[0] == ExtVerdict.DEADEND

    def test_min_depth_threshold(self):
        counts = np.array([[1, 0, 0, 0, 0]])
        v1, _ = classify_extensions(counts, min_depth=1)
        v2, _ = classify_extensions(counts, min_depth=2)
        assert v1[0] == ExtVerdict.UNIQUE
        assert v2[0] == ExtVerdict.DEADEND


class TestAnalyze:
    def test_uu_chain(self):
        # Error-free reads tiling a random genome: with k=21 all k-mers are
        # distinct, so every interior k-mer is UU and only the two terminal
        # ones dead-end on one side.
        from repro.sequence.dna import random_dna

        genome = random_dna(100, np.random.default_rng(3))
        reads = [genome[i : i + 60] for i in range(0, 41, 4)]
        ck = analyze_kmers(ReadBatch.from_strings(reads), 21, min_count=2, min_depth=2)
        assert len(ck) > 0
        assert ck.n_uu() == len(ck) - 2

    def test_fork_from_divergent_reads(self):
        shared = "ACGTACGTCC"
        reads = [shared + "A"] * 5 + [shared + "T"] * 5
        ck = analyze_kmers(ReadBatch.from_strings(reads), 5, min_count=2, min_depth=2)
        kmers = {ck.spectrum.kmer(i): i for i in range(len(ck))}
        # The k-mer ending at the divergence point is a fork on one side
        # (which side depends on canonical orientation).
        from repro.sequence.kmer import canonical

        i = kmers[canonical("CGTCC")]
        side_verdicts = {int(ck.left_verdict[i]), int(ck.right_verdict[i])}
        assert ExtVerdict.FORK in side_verdicts

    def test_singletons_dropped(self):
        from repro.sequence.kmer import canonical, kmers_of

        reads = ["ACGTACGTAC"] * 3 + ["CTAGGCATTC"]  # last read seen once
        ck = analyze_kmers(ReadBatch.from_strings(reads), 5, min_count=2)
        kmers = {ck.spectrum.kmer(i) for i in range(len(ck))}
        for km in kmers_of("CTAGGCATTC", 5):
            assert canonical(km) not in kmers
