"""Tests for stage-time accounting."""

import time

from repro.pipeline.stages import STAGES, StageTimes


class TestStageTimes:
    def test_stage_accumulates(self):
        t = StageTimes()
        with t.stage("alignment"):
            time.sleep(0.01)
        with t.stage("alignment"):
            time.sleep(0.01)
        assert t.seconds["alignment"] >= 0.02

    def test_add(self):
        t = StageTimes()
        t.add("file IO", 1.5)
        t.add("file IO", 0.5)
        assert t.seconds["file IO"] == 2.0

    def test_total_and_fractions(self):
        t = StageTimes()
        t.add("a", 3.0)
        t.add("b", 1.0)
        assert t.total() == 4.0
        f = t.fractions()
        assert f["a"] == 0.75 and f["b"] == 0.25

    def test_fractions_empty(self):
        assert StageTimes().fractions() == {}

    def test_exception_still_recorded(self):
        t = StageTimes()
        try:
            with t.stage("merge reads"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert "merge reads" in t.seconds

    def test_str_lists_known_stages_in_order(self):
        t = StageTimes()
        t.add("scaffolding", 1.0)
        t.add("merge reads", 2.0)
        t.add("custom stage", 0.5)
        text = str(t)
        assert text.index("merge reads") < text.index("scaffolding")
        assert "custom stage" in text
        assert "total" in text

    def test_paper_stage_names(self):
        assert "local assembly" in STAGES
        assert "aln kernel" in STAGES
        assert len(STAGES) == 8
