"""Tests for the GPU-simulated Smith-Waterman ("aln kernel") offload."""

import numpy as np
import pytest

from repro.gpusim import GpuContext
from repro.pipeline.aln_kernel import smith_waterman_banded
from repro.pipeline.aln_kernel_gpu import gpu_align_batch
from repro.sequence.dna import encode, random_dna


@pytest.fixture
def ctx():
    return GpuContext()


def _pairs(rng, n=6, err=0.02):
    out = []
    for _ in range(n):
        a = random_dna(int(rng.integers(40, 160)), rng)
        b = list(a)
        for i in range(len(b)):
            if rng.random() < err:
                b[i] = "ACGT"[("ACGT".index(b[i]) + 1) % 4]
        out.append((encode(a), encode("".join(b))))
    return out


class TestEquivalence:
    def test_matches_cpu_kernel(self, ctx, rng):
        pairs = _pairs(rng)
        results, launch = gpu_align_batch(ctx, pairs)
        for (a, b), res in zip(pairs, results):
            assert res == smith_waterman_banded(a, b)
        assert launch.n_warps == len(pairs)

    def test_scoring_params_forwarded(self, ctx, rng):
        pairs = _pairs(rng, n=2)
        results, _ = gpu_align_batch(ctx, pairs, match=2, mismatch=-3, gap=-5)
        for (a, b), res in zip(pairs, results):
            assert res == smith_waterman_banded(a, b, match=2, mismatch=-3, gap=-5)

    def test_empty_sequence_pair(self, ctx):
        results, _ = gpu_align_batch(ctx, [(encode(""), encode("ACGT"))])
        assert results[0].score == 0

    def test_empty_batch_rejected(self, ctx):
        with pytest.raises(ValueError):
            gpu_align_batch(ctx, [])


class TestMachineBehaviour:
    def test_regular_workload_low_predication(self, ctx, rng):
        """Alignment is the GPU-friendly stage (§2.1): predication far
        below local assembly's."""
        # band 15 -> row width <= 31: one warp chunk per row, predication
        # only at the DP corners (ADEPT sizes bands to the thread count).
        pairs = [(encode(random_dna(150, rng)), encode(random_dna(150, rng)))
                 for _ in range(4)]
        _, launch = gpu_align_batch(ctx, pairs, band=15)
        assert launch.counters.predication_ratio < 0.30

    def test_coalesced_band_loads(self, ctx, rng):
        pairs = [(encode(random_dna(100, rng)), encode(random_dna(100, rng)))]
        _, launch = gpu_align_batch(ctx, pairs)
        c = launch.counters
        # band loads are contiguous spans: transactions per load inst stay
        # near 1, unlike local assembly's scattered probing
        assert c.global_ld_transactions < 3 * c.global_ld_inst

    def test_time_scales_with_work(self, rng):
        small = GpuContext()
        big = GpuContext()
        p_small = [(encode(random_dna(50, rng)), encode(random_dna(50, rng)))]
        p_big = [(encode(random_dna(300, rng)), encode(random_dna(300, rng)))
                 for _ in range(8)]
        _, l_small = gpu_align_batch(small, p_small)
        _, l_big = gpu_align_batch(big, p_big)
        assert l_big.counters.warp_inst > l_small.counters.warp_inst
