"""Tests for the merge-reads stage."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pipeline.merge_reads import find_overlap, merge_read_pairs
from repro.sequence.dna import encode, random_dna, revcomp
from repro.sequence.read import Read, ReadBatch


class TestFindOverlap:
    def test_exact_overlap(self):
        a = encode("AAAACGTACGT")
        b = encode("CGTACGTTTTT")
        assert find_overlap(a, b, min_overlap=5) == 7

    def test_no_overlap(self):
        a = encode("AAAAAAAAAA")
        b = encode("CCCCCCCCCC")
        assert find_overlap(a, b, min_overlap=4) == 0

    def test_min_overlap_respected(self):
        a = encode("AAAACG")
        b = encode("CGTTTT")
        assert find_overlap(a, b, min_overlap=3) == 0
        assert find_overlap(a, b, min_overlap=2) == 2

    def test_mismatch_tolerance(self):
        a = encode("AAAA" + "ACGTACGTAC")
        b_clean = "ACGTACGTAC" + "TTTT"
        b_noisy = "ACGAACGTAC" + "TTTT"  # 1 mismatch in 10
        assert find_overlap(a, encode(b_clean), min_overlap=5) == 10
        assert find_overlap(a, encode(b_noisy), min_overlap=5, max_mismatch_frac=0.15) == 10
        assert find_overlap(a, encode(b_noisy), min_overlap=5, max_mismatch_frac=0.05) == 0

    def test_takes_longest(self):
        """Prefers the longest acceptable overlap (scans top-down)."""
        a = encode("ACAC")
        b = encode("ACAC")
        assert find_overlap(a, b, min_overlap=2) == 4


def _pair_batch(r1: str, r2_fragment_oriented: str) -> ReadBatch:
    """Build an interleaved pair; read 2 is stored reverse-complemented,
    as sequencers emit it."""
    return ReadBatch.from_reads(
        [Read("p/1", r1), Read("p/2", revcomp(r2_fragment_oriented))],
        paired=True,
    )


class TestMergePairs:
    def test_overlapping_pair_merges(self, rng):
        frag = random_dna(160, rng)
        batch = _pair_batch(frag[:100], frag[60:160])
        merged, stats = merge_read_pairs(batch)
        assert stats.n_merged == 1
        assert len(merged) == 1
        assert merged.seq(0) == frag

    def test_non_overlapping_pair_kept(self, rng):
        frag = random_dna(400, rng)
        batch = _pair_batch(frag[:100], frag[300:400])
        merged, stats = merge_read_pairs(batch)
        assert stats.n_merged == 0
        assert len(merged) == 2
        assert merged.seq(0) == frag[:100]

    def test_consensus_prefers_higher_quality(self, rng):
        frag = random_dna(150, rng)
        r1 = frag[:100]
        r2 = frag[50:150]
        # corrupt r1's base at fragment position 60 with low quality
        r1_bad = r1[:60] + ("A" if r1[60] != "A" else "C") + r1[61:]
        batch = ReadBatch.from_reads(
            [
                Read("p/1", r1_bad, tuple([40] * 60 + [2] + [40] * 39)),
                Read("p/2", revcomp(r2), (40,) * 100),
            ],
            paired=True,
        )
        merged, stats = merge_read_pairs(batch)
        assert stats.n_merged == 1
        assert merged.seq(0) == frag  # high-quality mate base won

    def test_merged_stats(self, rng):
        frag = random_dna(160, rng)
        batch = _pair_batch(frag[:100], frag[60:160])
        _, stats = merge_read_pairs(batch)
        assert stats.merge_rate == 1.0
        assert stats.mean_merged_length == 160

    def test_requires_paired(self):
        with pytest.raises(ValueError):
            merge_read_pairs(ReadBatch.from_strings(["ACGT"]))

    def test_order_preserved(self, rng):
        f1, f2 = random_dna(160, rng), random_dna(400, rng)
        b = ReadBatch.concat(
            [_pair_batch(f1[:100], f1[60:160]), _pair_batch(f2[:100], f2[300:])]
        )
        b = ReadBatch(b.bases, b.quals, b.offsets, b.names, paired=True)
        merged, stats = merge_read_pairs(b)
        assert stats.n_merged == 1
        assert merged.seq(0) == f1  # merged pair first
        assert merged.seq(1) == f2[:100]

    def test_quality_boost_capped(self, rng):
        frag = random_dna(150, rng)
        batch = _pair_batch(frag[:100], frag[50:150])
        merged, _ = merge_read_pairs(batch)
        assert merged.quals.max() <= 41
