"""Tests for de Bruijn contig generation (unitig traversal)."""

import numpy as np
import pytest

from repro.pipeline.contig_generation import KmerGraph, generate_contigs
from repro.pipeline.kmer_analysis import analyze_kmers
from repro.sequence.dna import random_dna, revcomp
from repro.sequence.read import ReadBatch


def assemble(reads: list[str], k: int, min_count=2, min_depth=2, min_len=None):
    ck = analyze_kmers(ReadBatch.from_strings(reads), k, min_count=min_count, min_depth=min_depth)
    return generate_contigs(ck, min_len)


def tile(genome: str, read_len=40, stride=5) -> list[str]:
    """Error-free reads tiling a genome (both 2x coverage via stride)."""
    return [
        genome[i : i + read_len]
        for i in range(0, len(genome) - read_len + 1, stride)
    ]


class TestReconstruction:
    def test_single_contig_from_clean_genome(self, rng):
        genome = random_dna(400, rng)
        contigs = assemble(tile(genome), 21)
        assert len(contigs) == 1
        seq = contigs[0].seq
        assert seq == genome or seq == revcomp(genome) or seq in genome or revcomp(seq) in genome
        # the contig must recover almost the whole genome
        assert len(seq) >= len(genome) - 2 * 21

    def test_depth_reflects_coverage(self, rng):
        genome = random_dna(300, rng)
        contigs = assemble(tile(genome, stride=2), 21)
        assert len(contigs) == 1
        assert contigs[0].depth > 5

    def test_deterministic(self, rng):
        genome = random_dna(500, rng)
        a = assemble(tile(genome), 21)
        b = assemble(tile(genome), 21)
        assert [c.seq for c in a] == [c.seq for c in b]

    def test_repeat_splits_contigs(self, rng):
        """A repeat longer than k creates forks that split the assembly."""
        u1, u2, u3 = (random_dna(150, rng) for _ in range(3))
        rep = random_dna(60, rng)
        genome = u1 + rep + u2 + rep + u3
        contigs = assemble(tile(genome), 21)
        assert len(contigs) >= 3  # unique arms + repeat unitig

    def test_two_genomes_two_contigs(self, rng):
        g1, g2 = random_dna(300, rng), random_dna(300, rng)
        contigs = assemble(tile(g1) + tile(g2), 21)
        assert len(contigs) == 2

    def test_min_contig_len_filter(self, rng):
        genome = random_dna(200, rng)
        all_c = assemble(tile(genome), 21, min_len=0)
        filtered = assemble(tile(genome), 21, min_len=10**6)
        assert len(all_c) >= 1 and len(filtered) == 0


class TestInvariants:
    def test_kmers_emitted_once(self, rng):
        """No k-mer appears in two contigs (traversal marks visited)."""
        from repro.sequence.kmer import canonical, iter_kmers

        genome = random_dna(600, rng)
        contigs = assemble(tile(genome), 21)
        seen = set()
        for c in contigs:
            for km in iter_kmers(c.seq, 21):
                cc = canonical(km)
                assert cc not in seen
                seen.add(cc)

    def test_contig_kmers_exist_in_reads(self, rng):
        from repro.sequence.kmer import canonical, iter_kmers

        genome = random_dna(400, rng)
        reads = tile(genome)
        read_kmers = {canonical(m) for r in reads for m in iter_kmers(r, 21)}
        for c in assemble(reads, 21):
            for km in iter_kmers(c.seq, 21):
                assert canonical(km) in read_kmers

    def test_circular_genome_terminates(self, rng):
        """A circular chromosome (cycle in the graph) must not loop."""
        core = random_dna(300, rng)
        circular = core + core[:60]  # wrap-around reads
        contigs = assemble(tile(circular), 21)
        assert len(contigs) >= 1
        assert all(len(c.seq) <= len(circular) + 21 for c in contigs)


class TestKmerGraph:
    def test_find_both_orientations(self, rng):
        genome = random_dna(200, rng)
        ck = analyze_kmers(ReadBatch.from_strings(tile(genome)), 21, 2, 2)
        graph = KmerGraph(ck)
        km = ck.spectrum.kmer(0)
        row, is_rc = graph.find(km)
        assert row == 0 and not is_rc
        row2, is_rc2 = graph.find(revcomp(km))
        assert row2 == 0 and is_rc2

    def test_find_absent(self, rng):
        genome = random_dna(200, rng)
        ck = analyze_kmers(ReadBatch.from_strings(tile(genome)), 21, 2, 2)
        graph = KmerGraph(ck)
        assert graph.find("A" * 21) is None or graph.find("A" * 21)[0] >= 0

    def test_oriented_ext_side_validation(self, rng):
        genome = random_dna(200, rng)
        ck = analyze_kmers(ReadBatch.from_strings(tile(genome)), 21, 2, 2)
        graph = KmerGraph(ck)
        with pytest.raises(ValueError):
            graph.oriented_ext(0, False, "up")
