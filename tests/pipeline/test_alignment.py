"""Tests for the alignment stage, esp. candidate-read recruitment.

The orientation conventions checked here are the load-bearing ones: local
assembly trusts that every candidate read is stored so that "extend
rightward" is correct for its contig end.
"""

import numpy as np
import pytest

from repro.pipeline.alignment import SeedIndex, align_reads
from repro.pipeline.contigs import Contig, ContigSet
from repro.sequence.dna import decode, random_dna, revcomp
from repro.sequence.read import ReadBatch


@pytest.fixture
def genome(rng):
    return random_dna(600, rng)


@pytest.fixture
def contig_set(genome):
    # contig covering the middle of the genome
    return ContigSet([Contig(cid=0, seq=genome[200:400], depth=10.0)])


def _batch(seqs):
    return ReadBatch.from_strings(seqs, qual=40)


class TestSeedIndex:
    def test_hits(self, contig_set):
        idx = SeedIndex(contig_set, seed_len=17)
        from repro.sequence.dna import encode

        seed = encode(contig_set[0].seq[10:27])
        assert (0, 10) in idx.hits(seed)

    def test_seed_len_validation(self, contig_set):
        with pytest.raises(ValueError):
            SeedIndex(contig_set, seed_len=4)


class TestAlignment:
    def test_interior_read_aligns(self, genome, contig_set):
        read = genome[250:330]
        res = align_reads(contig_set, _batch([read]))
        assert res.n_reads_aligned == 1
        (aln,) = res.alignments
        assert aln.cid == 0 and not aln.is_rc
        assert aln.offset == 50
        assert aln.identity == 1.0

    def test_rc_read_aligns(self, genome, contig_set):
        read = revcomp(genome[250:330])
        res = align_reads(contig_set, _batch([read]))
        (aln,) = res.alignments
        assert aln.is_rc and aln.offset == 50

    def test_unrelated_read_ignored(self, contig_set, rng):
        res = align_reads(contig_set, _batch([random_dna(100, rng)]))
        assert res.n_reads_aligned == 0

    def test_min_identity(self, genome, contig_set):
        read = list(genome[250:330])
        for i in range(0, 80, 4):  # 25% corruption
            read[i] = "A" if read[i] != "A" else "C"
        res = align_reads(contig_set, _batch(["".join(read)]), min_identity=0.95)
        assert res.n_reads_aligned == 0

    def test_best_by_read_picks_max(self, genome):
        contigs = ContigSet(
            [Contig(0, genome[200:400]), Contig(1, genome[200:280])]
        )
        read = genome[210:310]
        res = align_reads(contigs, _batch([read]))
        best = res.best_by_read()
        assert best[0].cid == 0  # longer overlap wins


class TestRecruitment:
    def test_right_end_candidate_oriented_forward(self, genome, contig_set):
        """A forward read hanging off the right end is stored as-is."""
        read = genome[350:450]  # 50 inside, 50 beyond the right end
        res = align_reads(contig_set, _batch([read]))
        cand = res.candidates[0]
        assert len(cand.right) == 1 and len(cand.left) == 0
        assert decode(cand.right.seqs[0]) == read

    def test_right_end_rc_read_flipped(self, genome, contig_set):
        read = revcomp(genome[350:450])
        res = align_reads(contig_set, _batch([read]))
        cand = res.candidates[0]
        assert len(cand.right) == 1
        assert decode(cand.right.seqs[0]) == genome[350:450]

    def test_left_end_candidate_revcomped(self, genome, contig_set):
        """A read hanging off the left end is stored reverse-complemented
        (so it extends rc(contig) rightward)."""
        read = genome[150:250]  # hangs off the left end
        res = align_reads(contig_set, _batch([read]))
        cand = res.candidates[0]
        assert len(cand.left) == 1 and len(cand.right) == 0
        assert decode(cand.left.seqs[0]) == revcomp(read)

    def test_left_candidate_quals_reversed(self, genome, contig_set):
        read = genome[150:250]
        quals = np.arange(100, dtype=np.uint8)
        from repro.sequence.read import Read

        batch = ReadBatch.from_reads([Read("r", read, tuple(int(q) for q in quals))])
        res = align_reads(contig_set, batch)
        cand = res.candidates[0]
        assert cand.left.quals[0].tolist() == quals[::-1].tolist()

    def test_interior_read_not_recruited(self, genome, contig_set):
        read = genome[250:330]
        res = align_reads(contig_set, _batch([read]))
        cand = res.candidates[0]
        assert cand.n_reads == 0

    def test_read_spanning_both_ends(self, genome):
        """A read longer than a short contig recruits to both ends."""
        contigs = ContigSet([Contig(0, genome[300:340])])
        read = genome[280:360]
        res = align_reads(contigs, _batch([read]), min_overlap=20)
        cand = res.candidates[0]
        assert len(cand.left) == 1 and len(cand.right) == 1

    def test_cap_max_reads_per_end(self, genome, contig_set):
        reads = [genome[350:450]] * 10
        res = align_reads(contig_set, _batch(reads), max_reads_per_end=3)
        assert len(res.candidates[0].right) == 3

    def test_every_contig_gets_entry(self, genome, rng):
        contigs = ContigSet([Contig(0, genome[200:400]), Contig(1, random_dna(150, rng))])
        res = align_reads(contigs, _batch([genome[250:330]]))
        assert set(res.candidates) == {0, 1}
        assert res.candidates[1].n_reads == 0
