"""Tests for the iterative de Bruijn rounds (MHM2's k-series)."""

import numpy as np
import pytest

from repro.analysis.stats import assembly_stats
from repro.pipeline import PipelineConfig, run_pipeline
from repro.sequence.community import Community, CommunityDesign, sample_paired_reads
from repro.sequence.error_model import IlluminaErrorModel
from repro.sequence.genomes import GenomeSpec


@pytest.fixture(scope="module")
def low_coverage_reads():
    """A dataset where single-k assembly fragments (low, uneven coverage)."""
    rng = np.random.default_rng(2024)
    design = CommunityDesign(
        n_genomes=2,
        genome_spec=GenomeSpec(length=12_000, repeat_fraction=0.02, shared_fraction=0.0),
        abundance_sigma=0.4,
        error_model=IlluminaErrorModel(rate_start=0.002, rate_end=0.008),
    )
    comm = Community.generate(design, rng)
    return sample_paired_reads(comm, 1200, rng)  # ~15x mean


class TestIterativeRounds:
    def test_multi_round_no_worse_contiguity(self, low_coverage_reads):
        """Feeding round-1 contigs into a larger-k round must not hurt
        (and normally helps) contiguity."""
        single = run_pipeline(
            low_coverage_reads,
            PipelineConfig(k_series=(21,), run_scaffolding=False),
        )
        multi = run_pipeline(
            low_coverage_reads,
            PipelineConfig(k_series=(21, 33), run_scaffolding=False),
        )
        s1 = assembly_stats(single.contigs.sequences())
        s2 = assembly_stats(multi.contigs.sequences())
        assert s2.n50 >= 0.8 * s1.n50  # never collapses
        assert s2.total_bases > 0.5 * s1.total_bases

    def test_three_rounds_run(self, low_coverage_reads):
        res = run_pipeline(
            low_coverage_reads,
            PipelineConfig(k_series=(21, 33, 45), run_scaffolding=False),
        )
        assert len(res.contigs) > 0

    def test_rounds_accumulate_kmer_stage_time(self, low_coverage_reads):
        res = run_pipeline(
            low_coverage_reads,
            PipelineConfig(k_series=(21, 33), run_scaffolding=False),
        )
        single = run_pipeline(
            low_coverage_reads,
            PipelineConfig(k_series=(21,), run_scaffolding=False),
        )
        assert res.times.seconds["k-mer analysis"] > single.times.seconds["k-mer analysis"]
