"""Property-based tests for the alignment stage's recruitment guarantees."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pipeline.alignment import align_reads
from repro.pipeline.contigs import Contig, ContigSet
from repro.sequence.dna import decode, random_dna, revcomp
from repro.sequence.read import ReadBatch


@st.composite
def genome_and_read(draw):
    """A genome, a contig window inside it, and a read overlapping an end."""
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    genome = random_dna(500, rng)
    c_start = draw(st.integers(100, 200))
    c_end = draw(st.integers(c_start + 120, 420))
    side = draw(st.sampled_from(["left", "right"]))
    rl = draw(st.integers(60, 100))
    overhang = draw(st.integers(10, rl - 40))
    if side == "right":
        r_start = c_end - (rl - overhang)
    else:
        r_start = c_start - overhang
    r_start = max(0, min(r_start, len(genome) - rl))
    read = genome[r_start : r_start + rl]
    flip = draw(st.booleans())
    return genome, (c_start, c_end), side, read, flip


class TestRecruitmentProperty:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(genome_and_read())
    def test_end_reads_recruited_with_correct_orientation(self, case):
        genome, (c_start, c_end), side, read, flip = case
        contig_seq = genome[c_start:c_end]
        contigs = ContigSet([Contig(0, contig_seq)])
        query = revcomp(read) if flip else read
        res = align_reads(contigs, ReadBatch.from_strings([query]), min_overlap=30)
        cand = res.candidates[0]

        # determine the true overhang directions
        hangs_left = False
        hangs_right = False
        gpos = genome.find(read)
        if gpos < c_start:
            hangs_left = True
        if gpos + len(read) > c_end:
            hangs_right = True

        if hangs_right and not hangs_left:
            assert len(cand.right) == 1
            # stored read is oriented to the contig strand
            assert decode(cand.right.seqs[0]) == read
        if hangs_left and not hangs_right:
            assert len(cand.left) == 1
            # stored reverse-complemented for the rc(contig) walk
            assert decode(cand.left.seqs[0]) == revcomp(read)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(genome_and_read())
    def test_interior_reads_never_recruited(self, case):
        genome, (c_start, c_end), _, _, _ = case
        contig_seq = genome[c_start:c_end]
        # build a read fully inside the contig
        inner = contig_seq[20:90]
        contigs = ContigSet([Contig(0, contig_seq)])
        res = align_reads(contigs, ReadBatch.from_strings([inner]), min_overlap=30)
        assert res.candidates[0].n_reads == 0
