"""The batched aligner's contract: bit-identical to the scalar reference.

:func:`repro.pipeline.alignment.align_reads` (PackedSeedIndex +
``align_core`` + ``materialise_alignment``) must reproduce
:func:`~repro.pipeline.alignment.align_reads_scalar` exactly — same
alignment list in the same order, same ``n_seed_hits``, same candidate
reads per contig end — across seed lengths (single- and multi-word
packing, the 32-mer sentinel edge), read-seed strides (including the
dense stride-1 lookup path) and threshold settings.  Downstream local
assembly and scaffolding consume this output, so "close enough" is not
a property the rewrite is allowed to have.
"""

import numpy as np
import pytest

from repro.pipeline.alignment import (
    AlnRows,
    PackedSeedIndex,
    SeedIndex,
    align_core,
    align_reads,
    align_reads_scalar,
)
from repro.pipeline.contig_generation import generate_contigs
from repro.pipeline.contigs import Contig, ContigSet
from repro.pipeline.kmer_analysis import analyze_kmers
from repro.pipeline.merge_reads import merge_read_pairs
from repro.sequence.community import arcticsynth_like, sample_paired_reads
from repro.sequence.dna import encode, random_dna
from repro.sequence.kmer import pack_kmers, valid_kmer_mask
from repro.sequence.read import ReadBatch


def assert_same_result(a, b) -> None:
    """Full structural equality of two AlignmentResults."""
    assert a.n_seed_hits == b.n_seed_hits
    assert a.n_reads_aligned == b.n_reads_aligned
    assert a.alignments == b.alignments
    assert set(a.candidates) == set(b.candidates)
    for cid in a.candidates:
        ca, cb = a.candidates[cid], b.candidates[cid]
        for side in ("left", "right"):
            sa, sb = getattr(ca, side), getattr(cb, side)
            assert len(sa) == len(sb), (cid, side)
            for x, y in zip(sa.seqs, sb.seqs):
                assert np.array_equal(x, y), (cid, side, "seq")
            for x, y in zip(sa.quals, sb.quals):
                assert np.array_equal(x, y), (cid, side, "qual")


@pytest.fixture(scope="module")
def workload():
    """Realistic contigs + reads: a small assembled community."""
    rng = np.random.default_rng(4242)
    community = arcticsynth_like(rng, n_genomes=3, genome_length=6_000)
    reads = sample_paired_reads(community, 900, rng)
    merged, _ = merge_read_pairs(reads)
    classified = analyze_kmers(merged, 21, min_count=2, min_depth=2)
    contigs = generate_contigs(classified)
    assert len(contigs) > 10  # the sweep needs a non-trivial index
    return contigs, reads


class TestPackedSeedIndex:
    def test_hits_match_dict_index_in_order(self, rng):
        genome = random_dna(800, rng)
        contigs = ContigSet(
            [Contig(0, genome[:500]), Contig(1, genome[300:])]
        )
        legacy = SeedIndex(contigs, seed_len=17)
        packed = PackedSeedIndex(contigs, seed_len=17)
        codes = encode(genome[100:160])
        words, _ = pack_kmers(codes, 17)
        valid = valid_kmer_mask(codes, 17)
        lo, hi = packed.lookup_ranges(words)
        for i in np.nonzero(valid)[0]:
            expect = legacy.hits(codes[i : i + 17])
            got = [
                (int(packed.cids[packed.slot[j]]), int(packed.pos[j]))
                for j in range(int(lo[i]), int(hi[i]))
            ]
            assert got == expect  # same hits, same enumeration order

    def test_missing_seed_has_empty_range(self, rng):
        contigs = ContigSet([Contig(0, random_dna(300, rng))])
        packed = PackedSeedIndex(contigs, seed_len=17)
        probe = encode("A" * 17)
        words, _ = pack_kmers(probe, 17)
        lo, hi = packed.lookup_ranges(words)
        # "A"*17 may exist; probe a seed that cannot (contig has no N,
        # but a miss is guaranteed for at least one of these patterns)
        assert np.all(hi >= lo)

    def test_empty_contigs(self):
        packed = PackedSeedIndex(ContigSet(), seed_len=17)
        assert len(packed) == 0
        words, _ = pack_kmers(encode("ACGT" * 10), 17)
        lo, hi = packed.lookup_ranges(words)
        assert np.all(lo == hi)

    def test_multi_word_seed_falls_back(self, rng):
        contigs = ContigSet([Contig(0, random_dna(400, rng))])
        packed = PackedSeedIndex(contigs, seed_len=33)
        assert packed._bstart is None  # S-dtype keys: no bucket table
        seq = contigs[0].seq[50:120]
        words, _ = pack_kmers(encode(seq), 33)
        lo, hi = packed.lookup_ranges(words)
        assert np.all(hi - lo >= 1)  # every window of the contig is indexed

    def test_seed_len_validation(self):
        with pytest.raises(ValueError):
            PackedSeedIndex(ContigSet(), seed_len=4)

    def test_from_arrays_roundtrip(self, rng):
        contigs = ContigSet([Contig(0, random_dna(400, rng))])
        a = PackedSeedIndex(contigs, seed_len=17)
        b = PackedSeedIndex.from_arrays(
            17, a.cids, a.cbases, a.coff, a.words, a.slot, a.pos
        )
        assert np.array_equal(a.words, b.words)
        assert np.array_equal(a.slot, b.slot)
        assert np.array_equal(a.pos, b.pos)
        words, _ = pack_kmers(encode(contigs[0].seq), 17)
        la, ha = a.lookup_ranges(words)
        lb, hb = b.lookup_ranges(words)
        assert np.array_equal(la, lb) and np.array_equal(ha, hb)


class TestBatchedEqualsScalar:
    @pytest.mark.parametrize(
        "seed_len,stride",
        [(13, 8), (17, 1), (17, 4), (17, 8), (21, 8), (32, 4), (33, 8)],
    )
    def test_sweep(self, workload, seed_len, stride):
        contigs, reads = workload
        ref = align_reads_scalar(
            contigs, reads, seed_len=seed_len, read_seed_stride=stride
        )
        got = align_reads(
            contigs, reads, seed_len=seed_len, read_seed_stride=stride
        )
        assert_same_result(ref, got)

    def test_thresholds(self, workload):
        contigs, reads = workload
        ref = align_reads_scalar(
            contigs, reads, min_identity=0.8, min_overlap=50
        )
        got = align_reads(contigs, reads, min_identity=0.8, min_overlap=50)
        assert_same_result(ref, got)

    def test_small_cap(self, workload):
        contigs, reads = workload
        ref = align_reads_scalar(contigs, reads, max_reads_per_end=3)
        got = align_reads(contigs, reads, max_reads_per_end=3)
        assert_same_result(ref, got)

    def test_no_reads(self, workload):
        contigs, _ = workload
        got = align_reads(contigs, ReadBatch.from_strings([]))
        assert got.n_reads_aligned == 0 and got.alignments == []
        assert set(got.candidates) == {c.cid for c in contigs}

    def test_no_contigs(self, workload):
        _, reads = workload
        got = align_reads(ContigSet(), reads)
        assert got.alignments == [] and got.candidates == {}

    def test_reads_shorter_than_seed(self):
        contigs = ContigSet([Contig(0, "ACGTACGTACGTACGTACGTACGT" * 4)])
        reads = ReadBatch.from_strings(["ACGTACGT"])  # < seed_len
        ref = align_reads_scalar(contigs, reads)
        got = align_reads(contigs, reads)
        assert_same_result(ref, got)


@pytest.mark.bench_smoke
def test_batched_aligner_smoke(workload):
    """CI miniature of ``benchmarks/bench_aln_stage.py``: the batched
    stage reproduces the scalar reference bit-for-bit at the bench's
    dense stride on a small community."""
    contigs, reads = workload
    ref = align_reads_scalar(contigs, reads, read_seed_stride=1)
    got = align_reads(contigs, reads, read_seed_stride=1)
    assert_same_result(ref, got)


class TestAlnRowsEmission:
    def test_emission_order_invariants(self, workload):
        contigs, reads = workload
        index = PackedSeedIndex(contigs, seed_len=17)
        rows = align_core(index, reads)
        # sorted by (read, seq_in_read), seq_in_read dense per read
        order = np.lexsort((rows.seq_in_read, rows.read))
        assert np.array_equal(order, np.arange(len(rows)))
        heads = np.ones(len(rows), dtype=bool)
        heads[1:] = rows.read[1:] != rows.read[:-1]
        assert np.all(rows.seq_in_read[heads] == 0)
        steps = rows.seq_in_read[1:][~heads[1:]] - rows.seq_in_read[:-1][~heads[1:]]
        assert np.all(steps == 1)
        assert rows.n_reads_aligned == int(heads.sum())

    def test_read_base_offsets_read_ids(self, workload):
        contigs, reads = workload
        index = PackedSeedIndex(contigs, seed_len=17)
        base = align_core(index, reads)
        shifted = align_core(index, reads, read_base=1000)
        assert np.array_equal(base.read + 1000, shifted.read)
        assert np.array_equal(base.cid, shifted.cid)
        assert np.array_equal(base.matches, shifted.matches)

    def test_empty_rows(self):
        rows = AlnRows.empty(n_seed_hits=7)
        assert len(rows) == 0
        assert rows.n_seed_hits == 7 and rows.n_reads_aligned == 0
