"""Tests for quality-aware k-mer counting (min_qual masking)."""

import numpy as np
import pytest

from repro.pipeline.kmer_analysis import analyze_kmers
from repro.pipeline.kmer_counts import count_kmers
from repro.sequence.read import Read, ReadBatch


def _batch_with_quals(seq: str, quals: list[int], copies: int = 3) -> ReadBatch:
    return ReadBatch.from_reads(
        Read(f"r{i}", seq, tuple(quals)) for i in range(copies)
    )


class TestMinQual:
    def test_disabled_by_default(self):
        b = _batch_with_quals("ACGTACGTAC", [2] * 10)
        spec = count_kmers(b, 5, min_count=2)
        assert len(spec) > 0

    def test_low_quality_base_masks_kmers(self):
        quals = [40] * 10
        quals[5] = 3  # one bad base in the middle
        b = _batch_with_quals("ACGTACGTAC", quals)
        full = count_kmers(b, 5, min_count=2)
        masked = count_kmers(b, 5, min_count=2, min_qual=10)
        # every 5-mer overlapping position 5 disappears
        assert len(masked) < len(full)
        kept = {masked.kmer(i) for i in range(len(masked))}
        from repro.sequence.kmer import canonical

        assert canonical("ACGTA") in kept  # positions 0-4: untouched
        # the k-mer covering positions 1..5 includes the masked base
        assert canonical("CGTAC") not in kept

    def test_all_high_quality_unchanged(self):
        b = _batch_with_quals("ACGTACGTAC", [40] * 10)
        a = count_kmers(b, 5, min_count=2)
        m = count_kmers(b, 5, min_count=2, min_qual=10)
        assert np.array_equal(a.words, m.words)
        assert np.array_equal(a.counts, m.counts)

    def test_masked_base_never_votes_as_extension(self):
        quals = [40] * 10
        quals[9] = 3  # last base unreliable
        b = _batch_with_quals("ACGTACGTAC", quals)
        ck = analyze_kmers(b, 5, min_count=2, min_depth=2, min_qual=10)
        from repro.sequence.kmer import canonical

        kmers = {ck.spectrum.kmer(i): i for i in range(len(ck))}
        key = canonical("TACGT")  # positions 3..7; next base (8) is fine,
        assert key in kmers
        # but the k-mer at 4..8 whose next base is the masked one: its
        # extension tally for that occurrence is "none", not the base.
        i = kmers[canonical("ACGTA")]
        total_ext = ck.spectrum.left_ext[i].sum() + ck.spectrum.right_ext[i].sum()
        assert total_ext == 2 * ck.spectrum.counts[i]

    def test_pipeline_config_accepts_min_qual(self, small_reads):
        from repro.pipeline import PipelineConfig, run_pipeline

        res = run_pipeline(
            small_reads,
            PipelineConfig(min_kmer_qual=10, run_scaffolding=False),
        )
        assert len(res.contigs) > 0
