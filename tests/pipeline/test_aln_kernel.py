"""Tests for the alignment kernels."""

import numpy as np
import pytest

from repro.pipeline.aln_kernel import smith_waterman_banded, ungapped_align
from repro.sequence.dna import encode, random_dna


class TestUngapped:
    def test_read_inside_contig(self):
        contig = encode("AAAACGTACGTTTT")
        read = encode("ACGTACG")  # matches contig[3:10]
        aln = ungapped_align(contig, read, contig_pos=3, read_pos=0)
        assert aln.offset == 3
        assert aln.ov_len == 7
        assert aln.mismatches == 0
        assert aln.identity == 1.0

    def test_read_hangs_off_right(self):
        contig = encode("AAAACGTA")
        read = encode("CGTACCCC")
        aln = ungapped_align(contig, read, contig_pos=4, read_pos=0)
        assert aln.offset == 4
        assert aln.ov_end == 8 and aln.ov_len == 4

    def test_read_hangs_off_left(self):
        contig = encode("CGTAAAAA")
        read = encode("TTTTCGTA")
        aln = ungapped_align(contig, read, contig_pos=0, read_pos=4)
        assert aln.offset == -4
        assert aln.ov_start == 0 and aln.ov_len == 4
        assert aln.mismatches == 0

    def test_mismatches_counted(self):
        contig = encode("ACGTACGT")
        read = encode("ACGAACGT")
        aln = ungapped_align(contig, read, 0, 0)
        assert aln.mismatches == 1
        assert aln.matches == 7

    def test_disjoint_is_empty(self):
        contig = encode("ACGT")
        read = encode("ACGT")
        aln = ungapped_align(contig, read, contig_pos=10, read_pos=0)
        assert aln.ov_len == 0 and aln.identity == 0.0


class TestSmithWaterman:
    def test_perfect_match(self):
        a = encode("ACGTACGTAC")
        res = smith_waterman_banded(a, a)
        assert res.score == 10
        assert res.end_a == 10 and res.end_b == 10

    def test_substring(self):
        a = encode("CGTAC")
        b = encode("AACGTACTT")
        res = smith_waterman_banded(a, b, band=8)
        assert res.score == 5

    def test_mismatch_penalty(self):
        a = encode("ACGTACGTAC")
        b = encode("ACGTGCGTAC")
        res = smith_waterman_banded(a, b)
        assert res.score == 8  # 9 matches - 1 mismatch

    def test_single_gap(self):
        a = encode("ACGTACGT")
        b = encode("ACGTTACGT")  # one inserted T
        res = smith_waterman_banded(a, b, band=4)
        assert res.score >= 8 - 2  # 8 matches - 1 gap

    def test_empty(self):
        assert smith_waterman_banded(encode(""), encode("ACGT")).score == 0

    def test_local_ignores_bad_prefix(self, rng):
        core = random_dna(30, rng)
        a = encode("TTTTTTTT" + core)
        b = encode("GGGGGGGG" + core)
        res = smith_waterman_banded(a, b, band=6)
        assert res.score >= 28  # the shared core dominates
