"""Tests for the alignment kernels."""

import numpy as np
import pytest

from repro.pipeline.aln_kernel import smith_waterman_banded, ungapped_align
from repro.sequence.dna import encode, random_dna


class TestUngapped:
    def test_read_inside_contig(self):
        contig = encode("AAAACGTACGTTTT")
        read = encode("ACGTACG")  # matches contig[3:10]
        aln = ungapped_align(contig, read, contig_pos=3, read_pos=0)
        assert aln.offset == 3
        assert aln.ov_len == 7
        assert aln.mismatches == 0
        assert aln.identity == 1.0

    def test_read_hangs_off_right(self):
        contig = encode("AAAACGTA")
        read = encode("CGTACCCC")
        aln = ungapped_align(contig, read, contig_pos=4, read_pos=0)
        assert aln.offset == 4
        assert aln.ov_end == 8 and aln.ov_len == 4

    def test_read_hangs_off_left(self):
        contig = encode("CGTAAAAA")
        read = encode("TTTTCGTA")
        aln = ungapped_align(contig, read, contig_pos=0, read_pos=4)
        assert aln.offset == -4
        assert aln.ov_start == 0 and aln.ov_len == 4
        assert aln.mismatches == 0

    def test_mismatches_counted(self):
        contig = encode("ACGTACGT")
        read = encode("ACGAACGT")
        aln = ungapped_align(contig, read, 0, 0)
        assert aln.mismatches == 1
        assert aln.matches == 7

    def test_disjoint_is_empty(self):
        contig = encode("ACGT")
        read = encode("ACGT")
        aln = ungapped_align(contig, read, contig_pos=10, read_pos=0)
        assert aln.ov_len == 0 and aln.identity == 0.0


class TestSmithWaterman:
    def test_perfect_match(self):
        a = encode("ACGTACGTAC")
        res = smith_waterman_banded(a, a)
        assert res.score == 10
        assert res.end_a == 10 and res.end_b == 10

    def test_substring(self):
        a = encode("CGTAC")
        b = encode("AACGTACTT")
        res = smith_waterman_banded(a, b, band=8)
        assert res.score == 5

    def test_mismatch_penalty(self):
        a = encode("ACGTACGTAC")
        b = encode("ACGTGCGTAC")
        res = smith_waterman_banded(a, b)
        assert res.score == 8  # 9 matches - 1 mismatch

    def test_single_gap(self):
        a = encode("ACGTACGT")
        b = encode("ACGTTACGT")  # one inserted T
        res = smith_waterman_banded(a, b, band=4)
        assert res.score >= 8 - 2  # 8 matches - 1 gap

    def test_empty(self):
        assert smith_waterman_banded(encode(""), encode("ACGT")).score == 0

    def test_local_ignores_bad_prefix(self, rng):
        core = random_dna(30, rng)
        a = encode("TTTTTTTT" + core)
        b = encode("GGGGGGGG" + core)
        res = smith_waterman_banded(a, b, band=6)
        assert res.score >= 28  # the shared core dominates


class TestSmithWatermanGapRegression:
    """Pinned scores for gap-bearing cases.

    The two-preallocated-row rewrite must score exactly what the
    per-row-allocating original did; these literals were captured from
    the original formulation and hold the recurrence (linear gap -2,
    two-pass left relaxation) fixed.
    """

    @pytest.mark.parametrize(
        "a,b,band,expect",
        [
            # perfect 20-mer: all matches
            ("ACGTACGTACGTACGTACGT", "ACGTACGTACGTACGTACGT", 16,
             (20, 20, 20)),
            # one base inserted in b at position 10: 20 matches - 1 gap
            ("ACGTACGTACGTACGTACGT", "ACGTACGTACTGTACGTACGT", 16,
             (18, 20, 21)),
            # deletion at b's end: local alignment simply ends earlier
            ("ACGTACGTACGTACGTACGT", "ACGTACGTACGTACGTACG", 16,
             (19, 19, 19)),
            # one base inserted in a (gap in the other sequence)
            ("ACGTACGTACGGTACGTACGT", "ACGTACGTACGTACGTACGT", 16,
             (18, 21, 20)),
            # mid-sequence indel with trailing divergence
            ("ACGTAACCGGTTACGTACGT", "ACGTAACCGGACGTACGTAA", 16,
             (14, 20, 18)),
            # two-base insertion: 16 matches - 2 gaps * 2
            ("AAAACCCCGGGGTTTT", "AAAACCCCTTGGGGTTTT", 8,
             (12, 16, 18)),
        ],
    )
    def test_pinned_scores(self, a, b, band, expect):
        res = smith_waterman_banded(encode(a), encode(b), band=band)
        assert (res.score, res.end_a, res.end_b) == expect

    def test_rows_not_shared_between_calls(self):
        # two consecutive calls must not see each other's DP state
        a = encode("ACGTACGTACGTACGT")
        first = smith_waterman_banded(a, a)
        smith_waterman_banded(encode("TTTTGGGG"), encode("CCCCAAAA"))
        again = smith_waterman_banded(a, a)
        assert first == again
