"""Tests for empirical insert-size estimation."""

import numpy as np
import pytest

from repro.pipeline.alignment import ReadAlignment, align_reads
from repro.pipeline.contigs import Contig, ContigSet
from repro.pipeline.insert_size import estimate_insert_size
from repro.sequence.community import Community, CommunityDesign, sample_paired_reads
from repro.sequence.error_model import PERFECT
from repro.sequence.genomes import GenomeSpec


def _aln(read_idx, cid, offset, is_rc):
    return ReadAlignment(read_idx=read_idx, cid=cid, offset=offset, is_rc=is_rc,
                         matches=100, mismatches=0, ov_len=100)


class TestSyntheticPlacements:
    def test_basic_estimate(self):
        best = {}
        lengths = np.full(200, 100, dtype=np.int64)
        for p in range(100):
            # fwd mate at 50, rev mate ending at 50 + insert
            insert = 350 + (p % 11) - 5
            best[2 * p] = _aln(2 * p, 0, 50, False)
            best[2 * p + 1] = _aln(2 * p + 1, 0, 50 + insert - 100, True)
        est = estimate_insert_size(best, lengths)
        assert est.n_pairs_used == 100
        assert est.reliable
        assert est.mean == pytest.approx(350, abs=6)
        assert est.median == pytest.approx(350, abs=6)

    def test_discordant_pairs_excluded(self):
        lengths = np.full(4, 100, dtype=np.int64)
        best = {
            0: _aln(0, 0, 50, False), 1: _aln(1, 0, 300, False),  # same strand
            2: _aln(2, 0, 50, False), 3: _aln(3, 1, 300, True),  # diff contig
        }
        est = estimate_insert_size(best, lengths)
        assert est.n_pairs_used == 0
        assert not est.reliable

    def test_outliers_trimmed_from_mean(self):
        lengths = np.full(60, 100, dtype=np.int64)
        best = {}
        for p in range(29):
            best[2 * p] = _aln(2 * p, 0, 0, False)
            best[2 * p + 1] = _aln(2 * p + 1, 0, 250, True)  # insert 350
        # one chimeric pair with absurd-but-allowed separation
        best[58] = _aln(58, 0, 0, False)
        best[59] = _aln(59, 0, 4000, True)
        est = estimate_insert_size(best, lengths)
        assert est.median == pytest.approx(350, abs=1)
        assert est.mean == pytest.approx(350, abs=5)

    def test_max_insert_filter(self):
        lengths = np.full(2, 100, dtype=np.int64)
        best = {0: _aln(0, 0, 0, False), 1: _aln(1, 0, 9900, True)}
        est = estimate_insert_size(best, lengths, max_insert=5000)
        assert est.n_pairs_used == 0


class TestEndToEnd:
    def test_recovers_library_insert(self, rng):
        design = CommunityDesign(
            n_genomes=1,
            genome_spec=GenomeSpec(length=8000, repeat_fraction=0, shared_fraction=0),
            abundance_sigma=0.0,
            insert_mean=400.0,
            insert_sd=15.0,
            error_model=PERFECT,
        )
        comm = Community.generate(design, rng)
        reads = sample_paired_reads(comm, 600, rng)
        contigs = ContigSet([Contig(0, comm.genomes[0].seq)])
        aln = align_reads(contigs, reads)
        est = estimate_insert_size(aln.best_by_read(), reads.lengths())
        assert est.reliable
        assert est.mean == pytest.approx(400, rel=0.05)
        assert est.sd < 50
