"""Tests for pipeline checkpointing (MHM2 --checkpoint analogue)."""

import hashlib
import json
import os

import numpy as np
import pytest

import repro.pipeline.checkpoint as checkpoint_mod
from repro.pipeline import PipelineConfig, run_pipeline
from repro.pipeline.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    checkpoint_key,
    load_contigs_checkpoint,
    save_contigs_checkpoint,
)
from repro.pipeline.contigs import Contig, ContigSet
from repro.sequence.community import arcticsynth_like, sample_paired_reads


@pytest.fixture(scope="module")
def reads():
    rng = np.random.default_rng(55)
    comm = arcticsynth_like(rng, n_genomes=2, genome_length=5000)
    return sample_paired_reads(comm, 600, rng)


class TestKeying:
    def test_key_deterministic(self, reads):
        cfg = PipelineConfig()
        assert checkpoint_key(reads, cfg) == checkpoint_key(reads, cfg)

    def test_key_changes_with_upstream_params(self, reads):
        a = checkpoint_key(reads, PipelineConfig(k_series=(21,)))
        b = checkpoint_key(reads, PipelineConfig(k_series=(33,)))
        c = checkpoint_key(reads, PipelineConfig(min_kmer_count=3))
        assert len({a, b, c}) == 3

    def test_key_ignores_downstream_params(self, reads):
        a = checkpoint_key(reads, PipelineConfig(local_assembly_mode="cpu"))
        b = checkpoint_key(reads, PipelineConfig(local_assembly_mode="gpu"))
        assert a == b

    def test_key_changes_with_reads(self, reads, rng):
        comm = arcticsynth_like(rng, n_genomes=2, genome_length=5000)
        other = sample_paired_reads(comm, 600, rng)
        cfg = PipelineConfig()
        assert checkpoint_key(reads, cfg) != checkpoint_key(other, cfg)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        contigs = ContigSet([Contig(0, "ACGTACGT", 3.5), Contig(7, "GGCC", 1.0)])
        save_contigs_checkpoint(tmp_path, contigs, "k1", 42)
        loaded = load_contigs_checkpoint(tmp_path, "k1")
        assert loaded is not None
        back, n = loaded
        assert n == 42
        assert [(c.cid, c.seq, c.depth) for c in back] == [
            (0, "ACGTACGT", 3.5), (7, "GGCC", 1.0),
        ]

    def test_wrong_key_rejected(self, tmp_path):
        save_contigs_checkpoint(tmp_path, ContigSet([Contig(0, "ACGT")]), "k1", 0)
        assert load_contigs_checkpoint(tmp_path, "other") is None

    def test_missing_dir(self, tmp_path):
        assert load_contigs_checkpoint(tmp_path / "nope", "k") is None

    def test_corrupt_meta(self, tmp_path):
        save_contigs_checkpoint(tmp_path, ContigSet([Contig(0, "ACGT")]), "k1", 0)
        (tmp_path / "contigs_checkpoint.json").write_text("{broken")
        assert load_contigs_checkpoint(tmp_path, "k1") is None

    def test_empty_contigs(self, tmp_path):
        save_contigs_checkpoint(tmp_path, ContigSet([]), "k1", 0)
        back, _ = load_contigs_checkpoint(tmp_path, "k1")
        assert len(back) == 0


class TestKeyDomainSeparation:
    """The digest frames every field as (tag, length, payload)."""

    def test_field_framing_is_unambiguous(self):
        a = hashlib.blake2b(digest_size=16)
        checkpoint_mod._update_field(a, b"x", b"abc")
        b = hashlib.blake2b(digest_size=16)
        checkpoint_mod._update_field(b, b"xa", b"bc")
        assert a.hexdigest() != b.hexdigest()

    def test_empty_vs_shifted_fields_differ(self):
        a = hashlib.blake2b(digest_size=16)
        checkpoint_mod._update_field(a, b"t", b"")
        checkpoint_mod._update_field(a, b"u", b"zz")
        b = hashlib.blake2b(digest_size=16)
        checkpoint_mod._update_field(b, b"t", b"zz")
        checkpoint_mod._update_field(b, b"u", b"")
        assert a.hexdigest() != b.hexdigest()

    def test_format_version_in_key(self, reads, monkeypatch):
        cfg = PipelineConfig()
        before = checkpoint_key(reads, cfg)
        monkeypatch.setattr(
            checkpoint_mod,
            "CHECKPOINT_FORMAT_VERSION",
            CHECKPOINT_FORMAT_VERSION + 1,
        )
        assert checkpoint_key(reads, cfg) != before


CONTIGS = ContigSet([Contig(0, "ACGTACGT", 3.5), Contig(7, "GGCC", 1.0)])


class TestCorruptionInjection:
    """A half-written or corrupted checkpoint must behave like a missing
    one — logged and recomputed, never raised (the job service resumes
    killed runs from whatever a dead process left behind)."""

    @pytest.fixture
    def ckpt(self, tmp_path):
        save_contigs_checkpoint(tmp_path, CONTIGS, "kA", 11)
        assert load_contigs_checkpoint(tmp_path, "kA") is not None
        return tmp_path

    def test_truncated_npz(self, ckpt):
        data = ckpt / "contigs_checkpoint.npz"
        blob = data.read_bytes()
        data.write_bytes(blob[: len(blob) // 2])
        assert load_contigs_checkpoint(ckpt, "kA") is None

    def test_zero_byte_npz(self, ckpt):
        (ckpt / "contigs_checkpoint.npz").write_bytes(b"")
        assert load_contigs_checkpoint(ckpt, "kA") is None

    def test_garbage_npz(self, ckpt):
        (ckpt / "contigs_checkpoint.npz").write_bytes(b"\x00\xffnot a zip" * 64)
        assert load_contigs_checkpoint(ckpt, "kA") is None

    def test_npz_missing_arrays(self, ckpt):
        np.savez(ckpt / "contigs_checkpoint.npz", cids=np.arange(2))
        assert load_contigs_checkpoint(ckpt, "kA") is None

    def test_non_dict_meta(self, ckpt):
        (ckpt / "contigs_checkpoint.json").write_text("[1, 2, 3]")
        assert load_contigs_checkpoint(ckpt, "kA") is None

    def test_binary_garbage_meta(self, ckpt):
        (ckpt / "contigs_checkpoint.json").write_bytes(b"\x80\x81\x82")
        assert load_contigs_checkpoint(ckpt, "kA") is None

    def test_meta_version_mismatch(self, ckpt):
        meta = json.loads((ckpt / "contigs_checkpoint.json").read_text())
        meta["version"] = CHECKPOINT_FORMAT_VERSION - 1
        (ckpt / "contigs_checkpoint.json").write_text(json.dumps(meta))
        assert load_contigs_checkpoint(ckpt, "kA") is None

    def test_meta_missing_version(self, ckpt):
        meta = json.loads((ckpt / "contigs_checkpoint.json").read_text())
        del meta["version"]
        (ckpt / "contigs_checkpoint.json").write_text(json.dumps(meta))
        assert load_contigs_checkpoint(ckpt, "kA") is None

    def test_garbage_n_distinct(self, ckpt):
        meta = json.loads((ckpt / "contigs_checkpoint.json").read_text())
        meta["n_distinct_kmers"] = None
        (ckpt / "contigs_checkpoint.json").write_text(json.dumps(meta))
        assert load_contigs_checkpoint(ckpt, "kA") is None

    def test_inconsistent_offsets(self, ckpt):
        key = np.frombuffer(b"kA", dtype=np.uint8)
        np.savez(
            ckpt / "contigs_checkpoint.npz",
            cids=np.arange(3, dtype=np.int64),
            depths=np.ones(3),
            offsets=np.array([0, 4], dtype=np.int64),  # wrong length
            bases=np.zeros(4, dtype=np.uint8),
            key=key,
        )
        assert load_contigs_checkpoint(ckpt, "kA") is None


class TestCrashSafety:
    """save publishes data-then-meta via os.replace; any crash point
    leaves a state load treats as consistent-or-missing."""

    def test_crash_between_files_detected(self, tmp_path, monkeypatch):
        save_contigs_checkpoint(tmp_path, CONTIGS, "kA", 1)
        real_replace = os.replace

        def crash_on_meta(src, dst):
            if str(dst).endswith(".json"):
                raise OSError("injected crash before meta publish")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", crash_on_meta)
        other = ContigSet([Contig(9, "TTTT", 2.0)])
        with pytest.raises(OSError, match="injected"):
            save_contigs_checkpoint(tmp_path, other, "kB", 2)
        monkeypatch.undo()
        # new data beside old meta: neither key may resume, neither raises
        assert load_contigs_checkpoint(tmp_path, "kB") is None
        assert load_contigs_checkpoint(tmp_path, "kA") is None

    def test_crash_before_data_keeps_old_pair(self, tmp_path, monkeypatch):
        save_contigs_checkpoint(tmp_path, CONTIGS, "kA", 1)
        real_replace = os.replace

        def crash_on_data(src, dst):
            if str(dst).endswith(".npz"):
                raise OSError("injected crash before data publish")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", crash_on_data)
        with pytest.raises(OSError, match="injected"):
            save_contigs_checkpoint(
                tmp_path, ContigSet([Contig(9, "TTTT", 2.0)]), "kB", 2
            )
        monkeypatch.undo()
        loaded = load_contigs_checkpoint(tmp_path, "kA")
        assert loaded is not None
        assert [c.seq for c in loaded[0]] == ["ACGTACGT", "GGCC"]

    def test_no_temp_files_left_behind(self, tmp_path):
        save_contigs_checkpoint(tmp_path, CONTIGS, "kA", 1)
        leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_overwrite_same_dir_different_key(self, tmp_path):
        save_contigs_checkpoint(tmp_path, CONTIGS, "kA", 1)
        other = ContigSet([Contig(9, "TTTT", 2.0)])
        save_contigs_checkpoint(tmp_path, other, "kB", 2)
        assert load_contigs_checkpoint(tmp_path, "kA") is None
        loaded = load_contigs_checkpoint(tmp_path, "kB")
        assert loaded is not None and [c.seq for c in loaded[0]] == ["TTTT"]



class TestPipelineResume:
    def test_resume_gives_identical_assembly(self, reads, tmp_path):
        cfg = PipelineConfig(run_scaffolding=False)
        first = run_pipeline(reads, cfg, checkpoint_dir=str(tmp_path))
        assert (tmp_path / "contigs_checkpoint.npz").exists()
        second = run_pipeline(reads, cfg, checkpoint_dir=str(tmp_path))
        assert [c.seq for c in first.contigs] == [c.seq for c in second.contigs]
        # the resumed run skipped the de Bruijn prefix
        assert "k-mer analysis" not in second.times.seconds
        assert "contig generation" not in second.times.seconds
        assert second.n_distinct_kmers == first.n_distinct_kmers

    def test_changed_params_invalidate(self, reads, tmp_path):
        run_pipeline(reads, PipelineConfig(run_scaffolding=False),
                     checkpoint_dir=str(tmp_path))
        res = run_pipeline(
            reads,
            PipelineConfig(k_series=(33,), run_scaffolding=False),
            checkpoint_dir=str(tmp_path),
        )
        # k changed -> the prefix re-ran
        assert "k-mer analysis" in res.times.seconds
