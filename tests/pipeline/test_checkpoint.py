"""Tests for pipeline checkpointing (MHM2 --checkpoint analogue)."""

import numpy as np
import pytest

from repro.pipeline import PipelineConfig, run_pipeline
from repro.pipeline.checkpoint import (
    checkpoint_key,
    load_contigs_checkpoint,
    save_contigs_checkpoint,
)
from repro.pipeline.contigs import Contig, ContigSet
from repro.sequence.community import arcticsynth_like, sample_paired_reads


@pytest.fixture(scope="module")
def reads():
    rng = np.random.default_rng(55)
    comm = arcticsynth_like(rng, n_genomes=2, genome_length=5000)
    return sample_paired_reads(comm, 600, rng)


class TestKeying:
    def test_key_deterministic(self, reads):
        cfg = PipelineConfig()
        assert checkpoint_key(reads, cfg) == checkpoint_key(reads, cfg)

    def test_key_changes_with_upstream_params(self, reads):
        a = checkpoint_key(reads, PipelineConfig(k_series=(21,)))
        b = checkpoint_key(reads, PipelineConfig(k_series=(33,)))
        c = checkpoint_key(reads, PipelineConfig(min_kmer_count=3))
        assert len({a, b, c}) == 3

    def test_key_ignores_downstream_params(self, reads):
        a = checkpoint_key(reads, PipelineConfig(local_assembly_mode="cpu"))
        b = checkpoint_key(reads, PipelineConfig(local_assembly_mode="gpu"))
        assert a == b

    def test_key_changes_with_reads(self, reads, rng):
        comm = arcticsynth_like(rng, n_genomes=2, genome_length=5000)
        other = sample_paired_reads(comm, 600, rng)
        cfg = PipelineConfig()
        assert checkpoint_key(reads, cfg) != checkpoint_key(other, cfg)


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        contigs = ContigSet([Contig(0, "ACGTACGT", 3.5), Contig(7, "GGCC", 1.0)])
        save_contigs_checkpoint(tmp_path, contigs, "k1", 42)
        loaded = load_contigs_checkpoint(tmp_path, "k1")
        assert loaded is not None
        back, n = loaded
        assert n == 42
        assert [(c.cid, c.seq, c.depth) for c in back] == [
            (0, "ACGTACGT", 3.5), (7, "GGCC", 1.0),
        ]

    def test_wrong_key_rejected(self, tmp_path):
        save_contigs_checkpoint(tmp_path, ContigSet([Contig(0, "ACGT")]), "k1", 0)
        assert load_contigs_checkpoint(tmp_path, "other") is None

    def test_missing_dir(self, tmp_path):
        assert load_contigs_checkpoint(tmp_path / "nope", "k") is None

    def test_corrupt_meta(self, tmp_path):
        save_contigs_checkpoint(tmp_path, ContigSet([Contig(0, "ACGT")]), "k1", 0)
        (tmp_path / "contigs_checkpoint.json").write_text("{broken")
        assert load_contigs_checkpoint(tmp_path, "k1") is None

    def test_empty_contigs(self, tmp_path):
        save_contigs_checkpoint(tmp_path, ContigSet([]), "k1", 0)
        back, _ = load_contigs_checkpoint(tmp_path, "k1")
        assert len(back) == 0


class TestPipelineResume:
    def test_resume_gives_identical_assembly(self, reads, tmp_path):
        cfg = PipelineConfig(run_scaffolding=False)
        first = run_pipeline(reads, cfg, checkpoint_dir=str(tmp_path))
        assert (tmp_path / "contigs_checkpoint.npz").exists()
        second = run_pipeline(reads, cfg, checkpoint_dir=str(tmp_path))
        assert [c.seq for c in first.contigs] == [c.seq for c in second.contigs]
        # the resumed run skipped the de Bruijn prefix
        assert "k-mer analysis" not in second.times.seconds
        assert "contig generation" not in second.times.seconds
        assert second.n_distinct_kmers == first.n_distinct_kmers

    def test_changed_params_invalidate(self, reads, tmp_path):
        run_pipeline(reads, PipelineConfig(run_scaffolding=False),
                     checkpoint_dir=str(tmp_path))
        res = run_pipeline(
            reads,
            PipelineConfig(k_series=(33,), run_scaffolding=False),
            checkpoint_dir=str(tmp_path),
        )
        # k changed -> the prefix re-ran
        assert "k-mer analysis" in res.times.seconds
