"""Tests for the vectorised k-mer counting engine."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.kmer_counts import NO_EXT, count_kmers
from repro.sequence.dna import revcomp
from repro.sequence.kmer import canonical, iter_kmers
from repro.sequence.read import ReadBatch


def naive_counts(seqs: list[str], k: int) -> Counter:
    """Reference canonical k-mer counter."""
    c: Counter = Counter()
    for s in seqs:
        for km in iter_kmers(s, k):
            c[canonical(km)] += 1
    return c


def spectrum_as_dict(spec) -> dict[str, int]:
    return {spec.kmer(i): int(spec.counts[i]) for i in range(len(spec))}


class TestCounting:
    def test_single_read(self):
        b = ReadBatch.from_strings(["ACGTAC"])
        spec = count_kmers(b, 3)
        assert spectrum_as_dict(spec) == naive_counts(["ACGTAC"], 3)

    def test_strands_merge(self):
        s = "ACGTACGTTT"
        b = ReadBatch.from_strings([s, revcomp(s)])
        spec = count_kmers(b, 5)
        expect = naive_counts([s], 5)
        assert spectrum_as_dict(spec) == {k: 2 * v for k, v in expect.items()}

    def test_no_cross_read_kmers(self):
        b = ReadBatch.from_strings(["AAAA", "TTTT"])
        spec = count_kmers(b, 3)
        # AAA (canonical of both AAA and TTT) counted 2+2=4; no k-mer spans
        # the read boundary.
        assert spectrum_as_dict(spec) == {"AAA": 4}

    def test_n_masked(self):
        b = ReadBatch.from_strings(["AANAA"])
        spec = count_kmers(b, 3)
        assert len(spec) == 0

    def test_min_count_filter(self):
        b = ReadBatch.from_strings(["ACGTT", "ACGAA"])
        spec = count_kmers(b, 5, min_count=2)
        assert len(spec) == 0  # each read's single 5-mer is a singleton
        spec1 = count_kmers(b, 3, min_count=2)
        assert "ACG" in spectrum_as_dict(spec1)

    def test_even_k_rejected(self):
        with pytest.raises(ValueError):
            count_kmers(ReadBatch.from_strings(["ACGT"]), 4)

    def test_short_reads_empty(self):
        spec = count_kmers(ReadBatch.from_strings(["AC"]), 21)
        assert len(spec) == 0

    def test_words_sorted(self):
        b = ReadBatch.from_strings(["ACGTACGTAGGCTTACG" * 3])
        spec = count_kmers(b, 5)
        w = spec.words
        order = np.lexsort(tuple(w[:, i] for i in range(w.shape[1] - 1, -1, -1)))
        assert (order == np.arange(len(spec))).all()

    def test_lookup(self):
        b = ReadBatch.from_strings(["ACGTACGGTTAAC"])
        spec = count_kmers(b, 5)
        from repro.sequence.kmer import pack_kmer

        for i in range(len(spec)):
            assert spec.lookup(spec.words[i]) == i
        absent = pack_kmer("GGGGG")
        if spec.lookup(absent) != -1:
            assert spec.kmer(spec.lookup(absent)) == "GGGGG"

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.text(alphabet="ACGTN", min_size=1, max_size=60), min_size=1, max_size=8),
        st.sampled_from([3, 5, 7, 21, 33]),
    )
    def test_matches_naive(self, seqs, k):
        b = ReadBatch.from_strings(seqs)
        spec = count_kmers(b, k)
        assert spectrum_as_dict(spec) == dict(naive_counts(seqs, k))


class TestLookupMany:
    def test_matches_per_row_lookup(self):
        b = ReadBatch.from_strings(["ACGTACGGTTAACGGATC", "TTGGCCAATT"])
        spec = count_kmers(b, 5)
        queries = spec.words[::2]
        got = spec.lookup_many(queries)
        expect = np.array(
            [spec.lookup(q) for q in queries], dtype=np.int64
        )
        assert got.dtype == np.int64
        assert np.array_equal(got, expect)

    def test_absent_rows_are_minus_one(self):
        from repro.sequence.kmer import pack_kmer

        spec = count_kmers(ReadBatch.from_strings(["ACGTACGGT"]), 5)
        present = spec.words[0]
        absent = np.asarray(pack_kmer("GGGGG"), dtype=np.uint64).reshape(
            present.shape
        )
        if spec.lookup(absent) != -1:
            pytest.skip("probe k-mer happens to be present")
        got = spec.lookup_many(np.stack([present, absent, present]))
        assert got[0] == 0 and got[2] == 0 and got[1] == -1

    def test_empty_spectrum_and_empty_query(self):
        spec = count_kmers(ReadBatch.from_strings(["AC"]), 21)
        assert len(spec) == 0
        got = spec.lookup_many(np.zeros((3, 1), dtype=np.uint64))
        assert np.array_equal(got, np.full(3, -1, dtype=np.int64))
        full = count_kmers(ReadBatch.from_strings(["ACGTACG"]), 3)
        nw = full.words.shape[1]
        assert full.lookup_many(np.zeros((0, nw), dtype=np.uint64)).size == 0

    def test_multi_word_kmers(self):
        # k=33 packs into two 64-bit words per row
        b = ReadBatch.from_strings(["ACGTACGGTTAACGGATCCATGGCAATCGGATCCAT"])
        spec = count_kmers(b, 33)
        assert spec.words.shape[1] == 2
        got = spec.lookup_many(spec.words)
        assert np.array_equal(got, np.arange(len(spec), dtype=np.int64))

    def test_one_dim_input_promoted(self):
        spec = count_kmers(ReadBatch.from_strings(["ACGTACGGT"]), 5)
        flat = spec.words[1]  # 1-D row
        got = spec.lookup_many(flat)
        assert got.shape == (1,) and got[0] == 1


class TestExtensions:
    def test_extension_tallies(self):
        # AAC is canonical; in "AACG" it is followed by G and preceded by
        # nothing; in "TAACG" preceded by T, followed by G.
        b = ReadBatch.from_strings(["AACG", "TAACG"])
        spec = count_kmers(b, 3)
        d = {spec.kmer(i): i for i in range(len(spec))}
        i = d["AAC"]
        assert spec.right_ext[i, 2] == 2  # G twice
        assert spec.left_ext[i, NO_EXT] == 1  # once at read start
        assert spec.left_ext[i, 3] == 1  # once preceded by T

    def test_rc_extension_swap(self):
        # GTT's canonical form is AAC.  In read "GTTA": GTT followed by A.
        # In canonical space that is: AAC preceded by T.
        b = ReadBatch.from_strings(["GTTA"])
        spec = count_kmers(b, 3)
        d = {spec.kmer(i): i for i in range(len(spec))}
        i = d["AAC"]
        assert spec.left_ext[i, 3] == 1  # T before AAC
        assert spec.right_ext[i, NO_EXT] == 1

    def test_extension_counts_sum_to_count(self):
        b = ReadBatch.from_strings(["ACGTACGGCTA", "GGTACCA"])
        spec = count_kmers(b, 3)
        assert (spec.left_ext.sum(axis=1) == spec.counts).all()
        assert (spec.right_ext.sum(axis=1) == spec.counts).all()
