"""Tests for paired-end scaffolding."""

import numpy as np
import pytest

from repro.pipeline.alignment import ReadAlignment
from repro.pipeline.contigs import Contig, ContigSet
from repro.pipeline.scaffolding import LEFT, RIGHT, build_scaffolds
from repro.sequence.dna import random_dna, revcomp


def _aln(read_idx, cid, offset, is_rc, matches=100):
    return ReadAlignment(
        read_idx=read_idx, cid=cid, offset=offset, is_rc=is_rc,
        matches=matches, mismatches=0, ov_len=matches,
    )


@pytest.fixture
def two_contigs(rng):
    return ContigSet([Contig(0, random_dna(300, rng)), Contig(1, random_dna(300, rng))])


def _link_pairs(n_pairs, cid_a=0, cid_b=1, start_read=0):
    """Pairs witnessing (A,right) ~ (B,left): read1 forward near A's right
    end, read2 rc near B's left end."""
    best = {}
    for p in range(n_pairs):
        r1 = start_read + 2 * p
        best[r1] = _aln(r1, cid_a, offset=180, is_rc=False)
        best[r1 + 1] = _aln(r1 + 1, cid_b, offset=30, is_rc=True)
    return best


class TestLinks:
    def test_simple_join(self, two_contigs):
        best = _link_pairs(3)
        lengths = np.full(6, 100, dtype=np.int64)
        res = build_scaffolds(two_contigs, best, lengths, insert_mean=350, min_support=2)
        assert res.n_edges_kept == 1
        assert len(res.scaffolds) == 1
        s = res.scaffolds[0]
        assert set(s.contig_ids) == {0, 1}
        assert "N" in s.seq
        a, b = two_contigs[0].seq, two_contigs[1].seq
        assert (a in s.seq or revcomp(a) in s.seq)
        assert (b in s.seq or revcomp(b) in s.seq)

    def test_min_support(self, two_contigs):
        best = _link_pairs(1)
        res = build_scaffolds(two_contigs, best, np.full(2, 100), min_support=2)
        assert res.n_edges_kept == 0
        assert len(res.scaffolds) == 2  # singletons

    def test_same_contig_pairs_ignored(self, two_contigs):
        best = {0: _aln(0, 0, 10, False), 1: _aln(1, 0, 150, True)}
        res = build_scaffolds(two_contigs, best, np.full(2, 100), min_support=1)
        assert res.n_links_considered == 0

    def test_unaligned_mate_ignored(self, two_contigs):
        best = {0: _aln(0, 0, 180, False)}  # mate missing
        res = build_scaffolds(two_contigs, best, np.full(2, 100), min_support=1)
        assert res.n_links_considered == 0

    def test_gap_estimate_reasonable(self, two_contigs):
        best = _link_pairs(4)
        res = build_scaffolds(two_contigs, best, np.full(8, 100), insert_mean=400)
        s = res.scaffolds[0]
        n_run = s.seq.count("N")
        # overhangs: A right: 300-180=120; B left: 30+100=130 -> gap ~150
        assert 100 <= n_run <= 200

    def test_ambiguous_end_dropped(self, rng):
        contigs = ContigSet([Contig(i, random_dna(300, rng)) for i in range(3)])
        best = {}
        best.update(_link_pairs(2, cid_a=0, cid_b=1, start_read=0))
        best.update(_link_pairs(2, cid_a=0, cid_b=2, start_read=100))
        lengths = np.full(200, 100, dtype=np.int64)
        res = build_scaffolds(contigs, best, lengths, min_support=2)
        # contig 0's right end links to both 1 and 2 -> ambiguous -> dropped
        assert res.n_ambiguous_ends >= 1
        assert len(res.scaffolds) == 3

    def test_chain_of_three(self, rng):
        contigs = ContigSet([Contig(i, random_dna(300, rng)) for i in range(3)])
        best = {}
        best.update(_link_pairs(2, cid_a=0, cid_b=1, start_read=0))
        # link B's right to C's left: read on B forward (right end), mate on C rc (left end)
        for p in range(2):
            r1 = 100 + 2 * p
            best[r1] = _aln(r1, 1, offset=180, is_rc=False)
            best[r1 + 1] = _aln(r1 + 1, 2, offset=30, is_rc=True)
        lengths = np.full(200, 100, dtype=np.int64)
        res = build_scaffolds(contigs, best, lengths, min_support=2)
        assert len(res.scaffolds) == 1
        assert len(res.scaffolds[0].contig_ids) == 3

    def test_every_contig_in_exactly_one_scaffold(self, rng):
        contigs = ContigSet([Contig(i, random_dna(200, rng)) for i in range(5)])
        best = _link_pairs(2, cid_a=1, cid_b=3)
        res = build_scaffolds(contigs, best, np.full(100, 100), min_support=2)
        all_ids = [cid for s in res.scaffolds for cid in s.contig_ids]
        assert sorted(all_ids) == [0, 1, 2, 3, 4]
