"""Driver-level contract of the batched SoA warp engine.

``GpuLocalAssembler(engine="batched")`` advances every warp of a launch
in lockstep over ``(n_warps, 32)`` NumPy state, but the result must be
*indistinguishable* from the sequential interpreter: extensions, merged
counters, per-launch ``per_warp_inst`` tuples and modelled timing are all
bit-identical, and both match the CPU reference.  This pins the tentpole
guarantee that batched execution is a pure implementation detail.

The ``bench_smoke``-marked test doubles as the tier-1 miniature of the
``bench_batched_trio`` benchmark: same shape of workload (10 warps
instead of 100), same identity assertions, no timing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LocalAssemblyConfig
from repro.core.cpu_local_assembly import run_local_assembly_cpu
from repro.core.driver import GpuLocalAssembler
from repro.core.local_assembler import extend_tasks
from repro.core.tasks import LEFT, RIGHT, ExtensionTask, TaskSet
from repro.sequence.dna import encode, random_dna


def _tiling_task(genome, contig_end, read_len=70, stride=6, cid=0, side=RIGHT):
    reads, quals = [], []
    for i in range(0, len(genome) - read_len + 1, stride):
        reads.append(encode(genome[i : i + read_len]))
        quals.append(np.full(read_len, 40, dtype=np.uint8))
    return ExtensionTask(
        cid=cid, side=side, contig=encode(genome[:contig_end]),
        reads=tuple(reads), quals=tuple(quals),
    )


@pytest.fixture(scope="module")
def workload():
    """10 tasks spanning bins 1-3, both sides, plus an empty-read task —
    enough structure to hit every predication path of the batched engine."""
    rng = np.random.default_rng(2024)
    tasks = []
    for cid in range(4):
        tasks.append(_tiling_task(random_dna(320, rng), 120, cid=cid, stride=5))
    for cid in range(4, 7):
        side = LEFT if cid % 2 else RIGHT
        tasks.append(
            _tiling_task(random_dna(220, rng), 90, cid=cid, stride=30, side=side)
        )
    tasks.append(
        ExtensionTask(cid=7, side=RIGHT, contig=encode(random_dna(80, rng)),
                      reads=(), quals=())
    )
    for cid in (8, 9):
        tasks.append(_tiling_task(random_dna(280, rng), 100, cid=cid, stride=7))
    return TaskSet(tasks)


@pytest.fixture(scope="module")
def config():
    return LocalAssemblyConfig(k_init=21, max_walk_len=150)


def _assert_identical_reports(a, b):
    assert a.extensions == b.extensions
    assert a.n_batches == b.n_batches
    assert len(a.launches) == len(b.launches)
    for la, lb in zip(a.launches, b.launches):
        assert la.name == lb.name
        assert (la.bin, la.kernel) == (lb.bin, lb.kernel)
        assert la.n_warps == lb.n_warps
        assert la.per_warp_inst == lb.per_warp_inst
        assert la.counters == lb.counters
        assert la.timing == lb.timing
    assert a.merged_counters() == b.merged_counters()


class TestBatchedDeterminism:
    @pytest.mark.bench_smoke
    def test_bit_identical_to_sequential(self, workload, config):
        seq = GpuLocalAssembler(config, engine="sequential").run(workload)
        bat = GpuLocalAssembler(config, engine="batched").run(workload)
        _assert_identical_reports(seq, bat)

    def test_batched_matches_cpu_reference(self, workload, config):
        cpu, _ = run_local_assembly_cpu(workload, config)
        bat = GpuLocalAssembler(config, engine="batched").run(workload)
        assert bat.extensions == cpu

    def test_v1_falls_back_to_sequential(self, workload, config):
        """No batched v1 implementation is registered — engine='batched'
        must produce v1's sequential results, not crash."""
        seq = GpuLocalAssembler(config, kernel_version="v1",
                                engine="sequential").run(workload)
        bat = GpuLocalAssembler(config, kernel_version="v1",
                                engine="batched").run(workload)
        _assert_identical_reports(seq, bat)

    def test_extend_tasks_threads_engine(self, workload, config):
        seq, seq_report = extend_tasks(
            workload, config=config, mode="gpu", engine="sequential"
        )
        bat, bat_report = extend_tasks(
            workload, config=config, mode="gpu", engine="batched"
        )
        assert bat == seq
        _assert_identical_reports(
            seq_report.gpu_report, bat_report.gpu_report
        )

    def test_engine_validation(self, config):
        with pytest.raises(ValueError):
            GpuLocalAssembler(config, engine="warp-drive")
