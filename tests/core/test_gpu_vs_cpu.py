"""Differential tests: the GPU kernels must reproduce the CPU baseline
bit-for-bit, for both kernel versions, across varied workloads.

This is the correctness contract of the whole reproduction (§3 of the
paper: the GPU implementation computes the same local assembly, only
faster).
"""

import numpy as np
import pytest

from repro.core.config import LocalAssemblyConfig
from repro.core.cpu_local_assembly import run_local_assembly_cpu
from repro.core.driver import GpuLocalAssembler
from repro.core.tasks import LEFT, RIGHT, ExtensionTask, TaskSet
from repro.sequence.dna import encode, random_dna


def _tiling_task(genome, contig_end, read_len=70, stride=6, cid=0, side=RIGHT, rng=None, err=0.0):
    reads = []
    quals = []
    for i in range(0, len(genome) - read_len + 1, stride):
        r = list(genome[i : i + read_len])
        q = np.full(read_len, 40, dtype=np.uint8)
        if err and rng is not None:
            for j in range(read_len):
                if rng.random() < err:
                    r[j] = "ACGT"[(("ACGT".index(r[j])) + 1) % 4]
                    q[j] = 8
        reads.append(encode("".join(r)))
        quals.append(q)
    return ExtensionTask(
        cid=cid, side=side, contig=encode(genome[:contig_end]),
        reads=tuple(reads), quals=tuple(quals),
    )


@pytest.fixture
def mixed_tasks(rng):
    """A task set covering bins 1-3, clean and noisy reads, forks."""
    tasks = []
    # bin 3: many reads, clean
    g0 = random_dna(400, rng)
    tasks.append(_tiling_task(g0, 120, cid=0, stride=4))
    # bin 2: few reads
    g1 = random_dna(250, rng)
    tasks.append(_tiling_task(g1, 100, cid=1, stride=40))
    # bin 1: no reads
    tasks.append(
        ExtensionTask(cid=2, side=RIGHT, contig=encode(random_dna(80, rng)), reads=(), quals=())
    )
    # noisy reads (exercises quality thresholds)
    g3 = random_dna(300, rng)
    tasks.append(_tiling_task(g3, 110, cid=3, stride=6, rng=rng, err=0.02))
    # forked continuation (exercises k-shift)
    stem = random_dna(120, rng)
    rep = random_dna(25, rng)
    t1, t2 = random_dna(80, rng), random_dna(80, rng)
    fork_reads = []
    for locus in (stem + rep + t1, random_dna(100, rng) + rep + t2):
        fork_reads += [locus[i : i + 60] for i in range(0, len(locus) - 60 + 1, 5)]
    tasks.append(
        ExtensionTask(
            cid=4, side=LEFT, contig=encode(stem),
            reads=tuple(encode(r) for r in fork_reads),
            quals=tuple(np.full(len(r), 40, dtype=np.uint8) for r in fork_reads),
        )
    )
    return TaskSet(tasks)


class TestDifferential:
    @pytest.mark.parametrize("version", ["v2", "v1"])
    def test_gpu_equals_cpu_mixed(self, mixed_tasks, version):
        cfg = LocalAssemblyConfig(k_init=21, max_walk_len=200)
        cpu, _ = run_local_assembly_cpu(mixed_tasks, cfg)
        gpu = GpuLocalAssembler(cfg, kernel_version=version).run(mixed_tasks)
        assert gpu.extensions == cpu

    def test_gpu_equals_cpu_fuzz(self, rng):
        """Randomised fuzz across many small tasks."""
        tasks = []
        for cid in range(12):
            glen = int(rng.integers(120, 320))
            genome = random_dna(glen, rng)
            contig_end = int(rng.integers(60, glen - 40))
            stride = int(rng.integers(3, 25))
            rl = int(rng.integers(40, 90))
            side = RIGHT if rng.random() < 0.5 else LEFT
            tasks.append(
                _tiling_task(genome, contig_end, read_len=rl, stride=stride,
                             cid=cid, side=side, rng=rng, err=0.01)
            )
        ts = TaskSet(tasks)
        cfg = LocalAssemblyConfig(k_init=17, k_min=13, k_max=41, k_step=8, max_walk_len=120)
        cpu, _ = run_local_assembly_cpu(ts, cfg)
        gpu = GpuLocalAssembler(cfg).run(ts)
        assert gpu.extensions == cpu

    def test_gpu_equals_cpu_under_batching(self, rng):
        """Tiny device memory forces many batches; results unchanged."""
        from repro.gpusim.device import DeviceSpec

        tiny = DeviceSpec(
            name="tiny", n_sms=80, schedulers_per_sm=4, clock_ghz=1.53,
            global_mem_bytes=150 * 1024, mem_bandwidth_bytes=900e9,
        )
        tasks = TaskSet(
            [_tiling_task(random_dna(200, rng), 90, cid=i, stride=10) for i in range(6)]
        )
        cfg = LocalAssemblyConfig(k_init=21, max_walk_len=100)
        cpu, _ = run_local_assembly_cpu(tasks, cfg)
        gpu = GpuLocalAssembler(cfg, device=tiny).run(tasks)
        assert gpu.extensions == cpu
        assert gpu.n_batches > 1

    def test_v1_v2_same_results_different_cost(self, mixed_tasks):
        cfg = LocalAssemblyConfig(k_init=21, max_walk_len=200)
        r1 = GpuLocalAssembler(cfg, kernel_version="v1").run(mixed_tasks)
        r2 = GpuLocalAssembler(cfg, kernel_version="v2").run(mixed_tasks)
        assert r1.extensions == r2.extensions
        c1, c2 = r1.merged_counters(), r2.merged_counters()
        # the paper's v1-vs-v2 signatures (§4.2, Fig 10):
        assert c1.warp_inst > 2 * c2.warp_inst
        assert c1.global_mem_inst > 2 * c2.global_mem_inst
        assert c1.predication_ratio > c2.predication_ratio


class TestWalkEquivalenceDetails:
    def test_loop_case(self, rng):
        unit = "ACGTTGCACTGGATCCA"
        reads = [(unit * 6)[i : i + 40] for i in range(0, len(unit) * 6 - 40, 3)]
        task = ExtensionTask(
            cid=0, side=RIGHT, contig=encode(unit * 2),
            reads=tuple(encode(r) for r in reads),
            quals=tuple(np.full(len(r), 40, dtype=np.uint8) for r in reads),
        )
        cfg = LocalAssemblyConfig(k_init=13, k_min=13, max_walk_len=300)
        ts = TaskSet([task])
        cpu, _ = run_local_assembly_cpu(ts, cfg)
        gpu = GpuLocalAssembler(cfg).run(ts)
        assert gpu.extensions == cpu

    def test_contig_shorter_than_k(self, rng):
        task = ExtensionTask(
            cid=0, side=RIGHT, contig=encode("ACGTACG"),  # 7 < k_init
            reads=(encode(random_dna(50, rng)),),
            quals=(np.full(50, 40, dtype=np.uint8),),
        )
        cfg = LocalAssemblyConfig(k_init=21, k_min=13, k_step=8)
        ts = TaskSet([task])
        cpu, _ = run_local_assembly_cpu(ts, cfg)
        gpu = GpuLocalAssembler(cfg).run(ts)
        assert gpu.extensions == cpu

    def test_max_len_exact_boundary(self, rng):
        genome = random_dna(600, rng)
        task = _tiling_task(genome, 100, stride=4)
        cfg = LocalAssemblyConfig(k_init=21, max_walk_len=37)  # odd cap
        ts = TaskSet([task])
        cpu, _ = run_local_assembly_cpu(ts, cfg)
        gpu = GpuLocalAssembler(cfg).run(ts)
        assert gpu.extensions == cpu
        assert len(next(iter(cpu.values()))) >= 37  # accumulated across rounds
