"""Tests for node-level multi-GPU local assembly."""

import numpy as np
import pytest

from repro.core.config import LocalAssemblyConfig
from repro.core.cpu_local_assembly import run_local_assembly_cpu
from repro.core.multi_gpu import NodeLocalAssembler, partition_tasks_by_work
from repro.core.tasks import LEFT, RIGHT, ExtensionTask, TaskSet
from repro.sequence.dna import encode, random_dna


def _task(cid, side, n_reads, rng, read_len=60):
    genome = random_dna(300, rng)
    reads = tuple(
        encode(genome[(i * 13) % 200 : (i * 13) % 200 + read_len])
        for i in range(n_reads)
    )
    quals = tuple(np.full(read_len, 40, dtype=np.uint8) for _ in range(n_reads))
    return ExtensionTask(cid=cid, side=side, contig=encode(genome[:100]),
                         reads=reads, quals=quals)


@pytest.fixture
def tasks(rng):
    out = []
    for cid in range(9):
        out.append(_task(cid, LEFT, (cid * 3) % 11, rng))
        out.append(_task(cid, RIGHT, (cid * 5 + 1) % 13, rng))
    return TaskSet(out)


class TestPartition:
    def test_covers_all_tasks(self, tasks):
        groups = partition_tasks_by_work(tasks, 4)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(len(tasks)))

    def test_contigs_stay_whole(self, tasks):
        groups = partition_tasks_by_work(tasks, 4)
        for g in groups:
            cids = {tasks[i].cid for i in g}
            for i in range(len(tasks)):
                if tasks[i].cid in cids:
                    assert i in g

    def test_single_gpu(self, tasks):
        (group,) = partition_tasks_by_work(tasks, 1)
        assert len(group) == len(tasks)

    def test_balanced_by_work(self, rng):
        from repro.core.ht_sizing import table_slots

        heavy = TaskSet(
            [_task(i, RIGHT, 20, rng) for i in range(8)]
        )
        groups = partition_tasks_by_work(heavy, 4)
        loads = [
            sum(table_slots(heavy[i]) for i in g) for g in groups
        ]
        assert max(loads) <= 2 * min(loads)

    def test_validation(self, tasks):
        with pytest.raises(ValueError):
            partition_tasks_by_work(tasks, 0)


class TestNodeAssembler:
    @pytest.mark.parametrize("n_gpus", [1, 2, 6])
    def test_matches_cpu_any_gpu_count(self, tasks, n_gpus):
        cfg = LocalAssemblyConfig(k_init=17, max_walk_len=80)
        cpu, _ = run_local_assembly_cpu(tasks, cfg)
        node = NodeLocalAssembler(cfg, n_gpus=n_gpus).run(tasks)
        assert node.extensions == cpu
        assert node.n_gpus == n_gpus

    def test_wall_time_is_slowest_gpu(self, tasks):
        cfg = LocalAssemblyConfig(k_init=17, max_walk_len=80)
        node = NodeLocalAssembler(cfg, n_gpus=3).run(tasks)
        assert node.wall_time_s == max(node.gpu_times)
        assert node.total_gpu_time_s == pytest.approx(sum(node.gpu_times))
        assert 0 < node.balance <= 1.0

    def test_more_gpus_not_slower(self, tasks):
        cfg = LocalAssemblyConfig(k_init=17, max_walk_len=80)
        one = NodeLocalAssembler(cfg, n_gpus=1).run(tasks)
        six = NodeLocalAssembler(cfg, n_gpus=6).run(tasks)
        assert six.wall_time_s <= one.wall_time_s

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeLocalAssembler(n_gpus=0)
