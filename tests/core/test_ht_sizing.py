"""Tests for the §3.2 memory math: sizing, load factor, batching."""

import numpy as np
import pytest

from repro.core.ht_sizing import (
    SLOT_BYTES,
    compression_factor,
    ht_sizes,
    kmer_entry_bytes,
    load_factor_bound,
    plan_batches,
    plan_layout,
    pointer_entry_bytes,
    table_slots,
    worst_case_load_factor,
)
from repro.core.tasks import ExtensionTask, TaskSet
from repro.sequence.dna import encode


def _task(cid, read_lens):
    reads = tuple(encode("A" * l) for l in read_lens)
    quals = tuple(np.full(l, 40, dtype=np.uint8) for l in read_lens)
    return ExtensionTask(cid=cid, side=0, contig=encode("ACGT" * 10), reads=reads, quals=quals)


class TestLoadFactor:
    def test_paper_worst_case(self):
        """The paper derives (300-21+1)/300 ~= 0.93."""
        assert worst_case_load_factor() == pytest.approx(0.9333, abs=1e-3)

    def test_formula(self):
        assert load_factor_bound(150, 21) == pytest.approx(130 / 150)

    def test_k_larger_than_read(self):
        assert load_factor_bound(20, 21) == 0.0

    def test_never_reaches_one(self):
        for l in (50, 150, 300):
            for k in (13, 21, 33):
                assert load_factor_bound(l, k) < 1.0

    def test_empirical_load_factor_below_bound(self):
        """Actual distinct k-mers never exceed the sized capacity."""
        from repro.core.cpu_local_assembly import build_kmer_table

        rng = np.random.default_rng(0)
        from repro.sequence.dna import random_dna

        reads = tuple(encode(random_dna(150, rng)) for _ in range(20))
        quals = tuple(np.full(150, 40, dtype=np.uint8) for _ in range(20))
        task = ExtensionTask(cid=0, side=0, contig=encode("ACGT" * 10), reads=reads, quals=quals)
        table = build_kmer_table(task, 21, 20)
        assert len(table) <= table_slots(task) * load_factor_bound(150, 21)


class TestLayout:
    def test_sizes_equal_read_bases(self):
        ts = TaskSet([_task(0, [150, 150]), _task(1, [100]), _task(2, [])])
        sizes = ht_sizes(ts)
        assert sizes.tolist() == [300, 100, 1]  # empty task gets 1 slot

    def test_offsets_prefix_sum(self):
        ts = TaskSet([_task(0, [100]), _task(1, [50, 50]), _task(2, [10])])
        layout = plan_layout(ts)
        assert layout.offsets.tolist() == [0, 100, 200, 210]
        assert layout.region(1) == (100, 200)
        assert layout.total_slots == 210

    def test_regions_disjoint_and_cover(self):
        ts = TaskSet([_task(i, [20 * (i + 1)]) for i in range(5)])
        layout = plan_layout(ts)
        prev_end = 0
        for i in range(5):
            start, end = layout.region(i)
            assert start == prev_end and end > start
            prev_end = end
        assert prev_end == layout.total_slots


class TestCompression:
    def test_fig6_factor(self):
        """The paper quotes ~15x for a 77-mer."""
        assert compression_factor(77) == pytest.approx(15.4)

    def test_entry_bytes(self):
        assert kmer_entry_bytes(77) == 85
        assert pointer_entry_bytes() == 13
        assert kmer_entry_bytes(77, 0) / (pointer_entry_bytes(0)) == pytest.approx(15.4)


class TestEdgeCases:
    def test_zero_read_bin_layout(self):
        """A bin of only read-less tasks still gets well-formed tables:
        one slot each, disjoint regions, and batch planning succeeds."""
        ts = TaskSet([_task(i, []) for i in range(4)])
        layout = plan_layout(ts)
        assert layout.sizes.tolist() == [1, 1, 1, 1]
        assert layout.total_slots == 4
        assert [layout.region(i) for i in range(4)] == [
            (0, 1), (1, 2), (2, 3), (3, 4)
        ]
        assert plan_batches(ts, device_mem_bytes=10**6) == [[0, 1, 2, 3]]

    def test_zero_read_bin_extends_nothing(self):
        ts = TaskSet([_task(i, []) for i in range(3)])
        from repro.core.config import LocalAssemblyConfig
        from repro.core.driver import GpuLocalAssembler

        report = GpuLocalAssembler(LocalAssemblyConfig(k_init=21)).run(ts)
        assert set(report.extensions.values()) == {""}

    def test_single_read_shorter_than_k(self):
        """One read shorter than k: the load-factor bound collapses to 0
        (no k-mer fits), but the table is still sized from read bases and
        the k-mer build yields an empty table, not an error."""
        from repro.core.cpu_local_assembly import build_kmer_table

        task = _task(0, [10])
        assert load_factor_bound(10, 21) == 0.0
        assert table_slots(task) == 10
        assert len(build_kmer_table(task, 21, 10)) == 0

    def test_bound_at_boundary_lengths(self):
        """(l-k+1)/l at the edges: l == k gives one window (1/l), l == k-1
        gives none, and the bound grows with l but never crosses the
        paper's 0.94 ceiling for l <= 300, k >= 21."""
        assert load_factor_bound(21, 21) == pytest.approx(1 / 21)
        assert load_factor_bound(20, 21) == 0.0
        assert load_factor_bound(0, 21) == 0.0
        worst = worst_case_load_factor()
        for l in (21, 22, 50, 150, 299, 300):
            for k in (21, 33, 55):
                assert load_factor_bound(l, k) <= worst + 1e-12
        bounds = [load_factor_bound(l, 21) for l in range(21, 301)]
        assert bounds == sorted(bounds)


class TestBatching:
    def test_everything_fits_one_batch(self):
        ts = TaskSet([_task(i, [100]) for i in range(10)])
        batches = plan_batches(ts, device_mem_bytes=10**9)
        assert batches == [list(range(10))]

    def test_splits_under_budget(self):
        ts = TaskSet([_task(i, [1000]) for i in range(10)])
        budget = int(3 * 1000 * SLOT_BYTES / 0.75)  # ~3 tasks per batch
        batches = plan_batches(ts, device_mem_bytes=budget)
        assert len(batches) >= 3
        assert [i for b in batches for i in b] == list(range(10))

    def test_oversized_task_isolated(self):
        ts = TaskSet([_task(0, [10]), _task(1, [10**6]), _task(2, [10])])
        batches = plan_batches(ts, device_mem_bytes=1000 * SLOT_BYTES)
        assert [1] in batches

    def test_batches_preserve_order(self):
        ts = TaskSet([_task(i, [500]) for i in range(20)])
        batches = plan_batches(ts, device_mem_bytes=4000 * SLOT_BYTES)
        flat = [i for b in batches for i in b]
        assert flat == sorted(flat)
