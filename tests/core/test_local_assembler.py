"""Tests for the high-level extend_contigs / extend_tasks API."""

import numpy as np
import pytest

from repro.core.config import LocalAssemblyConfig
from repro.core.local_assembler import extend_contigs, extend_tasks
from repro.core.tasks import RIGHT, ExtensionTask, TaskSet
from repro.pipeline.alignment import ContigCandidates
from repro.pipeline.contigs import Contig, ContigSet
from repro.sequence.dna import encode, random_dna


@pytest.fixture
def scenario(rng):
    """A contig + right-end candidates that extend it along the genome."""
    genome = random_dna(400, rng)
    contig = Contig(cid=0, seq=genome[:150], depth=12.0)
    cand = ContigCandidates(cid=0)
    for start in range(100, 300, 10):
        seq = encode(genome[start : start + 80])
        cand.right.add(seq, np.full(80, 40, dtype=np.uint8))
    return genome, ContigSet([contig]), {0: cand}


class TestExtendContigs:
    def test_cpu_extends_along_genome(self, scenario):
        genome, contigs, cands = scenario
        out, report = extend_contigs(contigs, cands, mode="cpu")
        assert report.mode == "cpu"
        assert report.n_extended == 1
        seq = out[0].seq
        assert len(seq) > 150
        assert seq == genome[: len(seq)]

    def test_gpu_matches_cpu(self, scenario):
        _, contigs, cands = scenario
        cpu_out, _ = extend_contigs(contigs, cands, mode="cpu")
        gpu_out, report = extend_contigs(contigs, cands, mode="gpu")
        assert [c.seq for c in cpu_out] == [c.seq for c in gpu_out]
        assert report.gpu_report is not None
        assert report.gpu_report.kernel_time_s > 0

    def test_depth_preserved(self, scenario):
        _, contigs, cands = scenario
        out, _ = extend_contigs(contigs, cands, mode="cpu")
        assert out[0].depth == 12.0

    def test_accepts_iterable_candidates(self, scenario):
        _, contigs, cands = scenario
        out_map, _ = extend_contigs(contigs, cands, mode="cpu")
        out_iter, _ = extend_contigs(contigs, list(cands.values()), mode="cpu")
        assert [c.seq for c in out_map] == [c.seq for c in out_iter]

    def test_invalid_mode(self, scenario):
        _, contigs, cands = scenario
        with pytest.raises(ValueError):
            extend_contigs(contigs, cands, mode="quantum")

    def test_wall_time_recorded(self, scenario):
        _, contigs, cands = scenario
        _, report = extend_contigs(contigs, cands, mode="cpu")
        assert report.wall_time_s > 0


class TestExtendTasks:
    def test_empty_taskset(self):
        exts, report = extend_tasks(TaskSet([]), mode="cpu")
        assert exts == {} and report.n_tasks == 0

    def test_report_counts(self, rng):
        genome = random_dna(300, rng)
        reads = tuple(encode(genome[i : i + 70]) for i in range(60, 200, 8))
        quals = tuple(np.full(70, 40, dtype=np.uint8) for _ in reads)
        t_live = ExtensionTask(cid=0, side=RIGHT, contig=encode(genome[:100]),
                               reads=reads, quals=quals)
        t_dead = ExtensionTask(cid=1, side=RIGHT, contig=encode(genome[:100]),
                               reads=(), quals=())
        exts, report = extend_tasks(TaskSet([t_live, t_dead]), mode="cpu")
        assert report.n_tasks == 2
        assert report.n_extended == 1
        assert report.total_extension_bases == len(exts[(0, RIGHT)])

    def test_custom_config_respected(self, rng):
        genome = random_dna(500, rng)
        reads = tuple(encode(genome[i : i + 70]) for i in range(60, 400, 6))
        quals = tuple(np.full(70, 40, dtype=np.uint8) for _ in reads)
        task = ExtensionTask(cid=0, side=RIGHT, contig=encode(genome[:100]),
                             reads=reads, quals=quals)
        short_cfg = LocalAssemblyConfig(max_walk_len=5)
        exts, _ = extend_tasks(TaskSet([task]), config=short_cfg, mode="cpu")
        # each round appends at most 5; round count is bounded
        from repro.core.gpu_batch import max_rounds

        assert len(exts[(0, RIGHT)]) <= 5 * max_rounds(short_cfg)
