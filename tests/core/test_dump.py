"""Tests for the local-assembly dump format (§4.1 standalone methodology)."""

import numpy as np
import pytest

from repro.core.config import LocalAssemblyConfig
from repro.core.cpu_local_assembly import run_local_assembly_cpu
from repro.core.dump import DUMP_FORMAT_VERSION, load_tasks, save_tasks
from repro.core.tasks import LEFT, RIGHT, ExtensionTask, TaskSet
from repro.sequence.dna import encode, random_dna


@pytest.fixture
def tasks(rng):
    out = []
    for cid in range(4):
        genome = random_dna(250, rng)
        n = cid * 3  # includes a zero-read task
        reads = tuple(encode(genome[i * 11 : i * 11 + 50]) for i in range(n))
        quals = tuple(
            rng.integers(2, 42, size=50).astype(np.uint8) for _ in range(n)
        )
        out.append(
            ExtensionTask(
                cid=cid, side=LEFT if cid % 2 else RIGHT,
                contig=encode(genome[:90]), reads=reads, quals=quals,
            )
        )
    return TaskSet(out)


class TestRoundtrip:
    def test_exact_roundtrip(self, tasks, tmp_path):
        p = tmp_path / "dump.npz"
        save_tasks(p, tasks)
        back = load_tasks(p)
        assert len(back) == len(tasks)
        for a, b in zip(tasks, back):
            assert a.cid == b.cid and a.side == b.side
            assert np.array_equal(a.contig, b.contig)
            assert len(a.reads) == len(b.reads)
            for ra, rb in zip(a.reads, b.reads):
                assert np.array_equal(ra, rb)
            for qa, qb in zip(a.quals, b.quals):
                assert np.array_equal(qa, qb)

    def test_results_identical_after_roundtrip(self, tasks, tmp_path):
        """The scientific requirement: a dump reproduces assembly exactly."""
        p = tmp_path / "dump.npz"
        save_tasks(p, tasks)
        cfg = LocalAssemblyConfig(k_init=17, max_walk_len=60)
        before, _ = run_local_assembly_cpu(tasks, cfg)
        after, _ = run_local_assembly_cpu(load_tasks(p), cfg)
        assert before == after

    def test_empty_taskset(self, tmp_path):
        p = tmp_path / "empty.npz"
        save_tasks(p, TaskSet([]))
        assert len(load_tasks(p)) == 0

    def test_version_check(self, tasks, tmp_path):
        p = tmp_path / "dump.npz"
        save_tasks(p, tasks)
        with np.load(p) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["version"] = np.int64(DUMP_FORMAT_VERSION + 1)
        np.savez(p, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_tasks(p)


class TestCliIntegration:
    def test_dump_and_localassm_commands(self, tmp_path):
        from repro.cli import main

        data = tmp_path / "d"
        rc = main([
            "generate", "--out", str(data), "--genomes", "2",
            "--genome-length", "5000", "--pairs", "400", "--seed", "9",
        ])
        assert rc == 0
        dump = tmp_path / "la.npz"
        rc = main([
            "dump-localassm", str(data / "reads.fastq"), "--out", str(dump),
        ])
        assert rc == 0 and dump.exists()
        rc = main(["localassm", str(dump), "--mode", "cpu"])
        assert rc == 0
