"""Tests for extension tasks, orientation math and §3.1 binning."""

import numpy as np
import pytest

from repro.core.binning import bin_contigs, bin_distribution
from repro.core.config import LocalAssemblyConfig
from repro.core.tasks import (
    LEFT,
    RIGHT,
    ExtensionTask,
    TaskSet,
    apply_extensions,
    tasks_from_candidates,
)
from repro.sequence.dna import encode, revcomp


def _task(cid, side, n_reads, contig="ACGTACGTACGTACGTACGTACGT"):
    reads = tuple(encode("ACGTACGT") for _ in range(n_reads))
    quals = tuple(np.full(8, 40, dtype=np.uint8) for _ in range(n_reads))
    return ExtensionTask(cid=cid, side=side, contig=encode(contig), reads=reads, quals=quals)


class TestTasks:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExtensionTask(cid=0, side=7, contig=encode("ACGT"), reads=(), quals=())
        with pytest.raises(ValueError):
            ExtensionTask(
                cid=0, side=LEFT, contig=encode("ACGT"),
                reads=(encode("AC"),), quals=(),
            )

    def test_read_stats(self):
        t = _task(0, RIGHT, 3)
        assert t.n_reads == 3
        assert t.total_read_bases == 24
        assert t.max_read_length == 8
        assert _task(0, RIGHT, 0).max_read_length == 0

    def test_taskset_reads_per_contig(self):
        ts = TaskSet([_task(0, LEFT, 2), _task(0, RIGHT, 3), _task(1, LEFT, 0), _task(1, RIGHT, 0)])
        assert ts.reads_per_contig() == {0: 5, 1: 0}
        assert ts.contig_ids() == [0, 1]


class TestOrientation:
    def test_tasks_from_candidates_orients_left(self):
        class Side:
            def __init__(self, seqs):
                self.seqs = seqs
                self.quals = [np.full(len(s), 40, dtype=np.uint8) for s in seqs]

        class Cand:
            cid = 5
            left = Side([encode("AACC")])
            right = Side([encode("GGTT")])

        seqs = {5: "ACGTACGT"}
        ts = tasks_from_candidates(seqs, [Cand()])
        assert len(ts) == 2
        left_task = next(t for t in ts if t.side == LEFT)
        right_task = next(t for t in ts if t.side == RIGHT)
        # left task's contig is the reverse complement
        assert left_task.contig.tolist() == encode(revcomp("ACGTACGT")).tolist()
        assert right_task.contig.tolist() == encode("ACGTACGT").tolist()

    def test_apply_extensions_math(self):
        seqs = {0: "CCCGGG"}
        exts = {(0, LEFT): "AT", (0, RIGHT): "GG"}
        out = apply_extensions(seqs, exts)
        # left ext "AT" was walked on rc(contig); prepended as revcomp("AT")="AT"
        assert out[0] == revcomp("AT") + "CCCGGG" + "GG"

    def test_apply_extensions_empty(self):
        out = apply_extensions({1: "ACGT"}, {})
        assert out[1] == "ACGT"

    def test_left_extension_roundtrip(self):
        """Extending rc(contig) rightward by X means the original genome
        had revcomp(X) before the contig."""
        genome = "TTAACCGGACGTACGT"
        contig = genome[6:]  # "GGACGTACGT"
        missing = genome[:6]  # "TTAACC"
        # walking right on rc(contig) should produce revcomp(missing)
        ext_left = revcomp(missing)
        out = apply_extensions({0: contig}, {(0, LEFT): ext_left})
        assert out[0] == genome


class TestBinning:
    def test_three_bins(self):
        ts = TaskSet(
            [_task(0, LEFT, 0), _task(0, RIGHT, 0),   # bin 1
             _task(1, LEFT, 2), _task(1, RIGHT, 3),   # bin 2 (5 reads)
             _task(2, LEFT, 6), _task(2, RIGHT, 7)]   # bin 3 (13 reads)
        )
        bins = bin_contigs(ts, LocalAssemblyConfig(bin2_max_reads=10))
        assert bins.bin1 == (0,)
        assert bins.bin2 == (1,)
        assert bins.bin3 == (2,)
        assert bins.n_contigs == 3

    def test_boundary_at_bin2_max(self):
        ts = TaskSet([_task(0, LEFT, 10), _task(0, RIGHT, 0)])
        bins = bin_contigs(ts, LocalAssemblyConfig(bin2_max_reads=10))
        assert bins.bin3 == (0,)  # exactly 10 reads -> bin 3
        ts2 = TaskSet([_task(0, LEFT, 9), _task(0, RIGHT, 0)])
        bins2 = bin_contigs(ts2, LocalAssemblyConfig(bin2_max_reads=10))
        assert bins2.bin2 == (0,)

    def test_fractions(self):
        ts = TaskSet(
            [_task(i, LEFT, 0) for i in range(8)]
            + [_task(8, LEFT, 5), _task(9, LEFT, 50)]
        )
        bins = bin_contigs(ts)
        f1, f2, f3 = bins.fractions()
        assert (f1, f2, f3) == (0.8, 0.1, 0.1)
        assert sum(bins.fractions()) == pytest.approx(1.0)

    def test_work_fractions_dominated_by_bin3(self):
        ts = TaskSet([_task(0, LEFT, 0), _task(1, LEFT, 5), _task(2, LEFT, 500)])
        bins = bin_contigs(ts)
        w1, w2, w3 = bins.work_fractions()
        assert w3 > 0.95 and w1 == 0.0

    def test_empty_taskset(self):
        bins = bin_contigs(TaskSet([]))
        assert bins.n_contigs == 0
        assert bins.fractions() == (0.0, 0.0, 0.0)
        assert bins.work_fractions() == (0.0, 0.0, 0.0)

    def test_distribution_sorted_by_k(self):
        ts = TaskSet([_task(0, LEFT, 0)])
        d = bin_distribution({33: bin_contigs(ts), 21: bin_contigs(ts)})
        assert list(d) == [21, 33]
