"""Tests for the GPU driver: bins, launch order, batching, reporting."""

import numpy as np
import pytest

from repro.core.config import LocalAssemblyConfig
from repro.core.driver import GpuLocalAssembler
from repro.core.tasks import LEFT, RIGHT, ExtensionTask, TaskSet
from repro.sequence.dna import encode, random_dna


def _task(cid, side, n_reads, rng, glen=250, contig_end=100):
    genome = random_dna(glen, rng)
    reads, quals = [], []
    for i in range(n_reads):
        start = (i * 13) % (glen - 60)
        reads.append(encode(genome[start : start + 60]))
        quals.append(np.full(60, 40, dtype=np.uint8))
    return ExtensionTask(
        cid=cid, side=side, contig=encode(genome[:contig_end]),
        reads=tuple(reads), quals=tuple(quals),
    )


@pytest.fixture
def binned_tasks(rng):
    return TaskSet(
        [
            _task(0, RIGHT, 0, rng), _task(0, LEFT, 0, rng),      # bin 1
            _task(1, RIGHT, 4, rng), _task(1, LEFT, 3, rng),      # bin 2
            _task(2, RIGHT, 20, rng), _task(2, LEFT, 15, rng),    # bin 3
        ]
    )


class TestDriver:
    def test_bin1_never_launched(self, binned_tasks):
        report = GpuLocalAssembler(LocalAssemblyConfig()).run(binned_tasks)
        assert report.extensions[(0, RIGHT)] == ""
        assert report.extensions[(0, LEFT)] == ""
        # only bin2 + bin3 kernels were launched
        names = [l.name for l in report.launches]
        assert all("bin2" in n or "bin3" in n for n in names)

    def test_bin3_launched_first(self, binned_tasks):
        report = GpuLocalAssembler(LocalAssemblyConfig()).run(binned_tasks)
        names = [l.name for l in report.launches]
        assert "bin3" in names[0]
        assert "bin2" in names[-1]

    def test_bins_classified(self, binned_tasks):
        report = GpuLocalAssembler(LocalAssemblyConfig()).run(binned_tasks)
        assert report.bins.bin1 == (0,)
        assert report.bins.bin2 == (1,)
        assert report.bins.bin3 == (2,)

    def test_report_fields(self, binned_tasks):
        report = GpuLocalAssembler(LocalAssemblyConfig()).run(binned_tasks)
        assert report.kernel_time_s > 0
        assert report.transfer_time_s > 0
        assert report.transfer_bytes > 0
        assert report.total_time_s == pytest.approx(
            report.kernel_time_s + report.transfer_time_s
        )
        assert report.high_water_bytes > 0
        assert report.n_batches >= 2  # one per non-empty bin
        assert report.bin_kernel_time_s("bin3") > 0
        assert report.n_extended() >= 2

    def test_all_tasks_get_extensions(self, binned_tasks):
        report = GpuLocalAssembler(LocalAssemblyConfig()).run(binned_tasks)
        assert set(report.extensions) == {
            (t.cid, t.side) for t in binned_tasks
        }

    def test_invalid_kernel_version(self):
        with pytest.raises(ValueError):
            GpuLocalAssembler(kernel_version="v3")

    def test_memory_freed_between_batches(self, rng):
        from repro.gpusim.device import DeviceSpec

        tiny = DeviceSpec(
            name="tiny", n_sms=80, schedulers_per_sm=4, clock_ghz=1.53,
            global_mem_bytes=150 * 1024, mem_bandwidth_bytes=900e9,
        )
        tasks = TaskSet([_task(i, RIGHT, 12, rng) for i in range(8)])
        report = GpuLocalAssembler(LocalAssemblyConfig(), device=tiny).run(tasks)
        assert report.n_batches > 1
        assert report.high_water_bytes <= tiny.global_mem_bytes

    def test_empty_taskset(self):
        report = GpuLocalAssembler(LocalAssemblyConfig()).run(TaskSet([]))
        assert report.extensions == {}
        assert report.launches == []

    def test_counters_merged(self, binned_tasks):
        report = GpuLocalAssembler(LocalAssemblyConfig()).run(binned_tasks)
        merged = report.merged_counters()
        assert merged.warp_inst == sum(l.counters.warp_inst for l in report.launches)
