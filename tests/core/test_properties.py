"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import LocalAssemblyConfig
from repro.core.cpu_local_assembly import extend_task_cpu, run_local_assembly_cpu
from repro.core.driver import GpuLocalAssembler
from repro.core.extension import classify_extension
from repro.core.gpu_batch import ext_capacity
from repro.core.tasks import RIGHT, ExtensionTask, TaskSet, apply_extensions
from repro.sequence.dna import encode, revcomp

dna = st.text(alphabet="ACGT", min_size=0, max_size=60)


@st.composite
def extension_tasks(draw):
    """A small random extension task built from a random genome."""
    genome = draw(st.text(alphabet="ACGT", min_size=80, max_size=240))
    contig_end = draw(st.integers(30, max(31, len(genome) - 40)))
    read_len = draw(st.integers(25, 50))
    stride = draw(st.integers(2, 15))
    n_err = draw(st.integers(0, 3))
    reads = [
        genome[i : i + read_len]
        for i in range(0, len(genome) - read_len + 1, stride)
    ]
    reads = [r for r in reads if len(r) == read_len]
    quals = [np.full(read_len, 40, dtype=np.uint8) for _ in reads]
    # inject a few low-quality errors
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    for _ in range(n_err):
        if not reads:
            break
        ri = int(rng.integers(0, len(reads)))
        pos = int(rng.integers(0, read_len))
        r = list(reads[ri])
        r[pos] = "ACGT"[("ACGT".index(r[pos]) + 1) % 4]
        reads[ri] = "".join(r)
        quals[ri] = quals[ri].copy()
        quals[ri][pos] = 5
    return ExtensionTask(
        cid=0,
        side=RIGHT,
        contig=encode(genome[:contig_end]),
        reads=tuple(encode(r) for r in reads),
        quals=tuple(quals),
    )


CFG = LocalAssemblyConfig(k_init=17, k_min=13, k_max=33, k_step=8, max_walk_len=60)


class TestGpuCpuProperty:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(extension_tasks())
    def test_gpu_always_equals_cpu(self, task):
        ts = TaskSet([task])
        cpu, _ = run_local_assembly_cpu(ts, CFG)
        gpu = GpuLocalAssembler(CFG).run(ts)
        assert gpu.extensions == cpu

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(extension_tasks())
    def test_extension_bounded_by_capacity(self, task):
        """No extension can exceed the device buffer sizing bound."""
        result = extend_task_cpu(task, CFG)
        assert len(result.extension) <= ext_capacity(CFG)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(extension_tasks())
    def test_deterministic(self, task):
        a = extend_task_cpu(task, CFG)
        b = extend_task_cpu(task, CFG)
        assert a.extension == b.extension
        assert a.rounds == b.rounds


class TestClassifyProperties:
    @given(
        st.tuples(*(st.integers(0, 30) for _ in range(4))),
        st.tuples(*(st.integers(0, 30) for _ in range(4))),
        st.permutations(range(4)),
    )
    def test_label_permutation_equivariance(self, hi, total, perm):
        """Relabelling bases permutes the chosen base, nothing else."""
        status, base = classify_extension(hi, total)
        hi_p = tuple(hi[perm.index(b)] for b in range(4))
        tot_p = tuple(total[perm.index(b)] for b in range(4))
        status_p, base_p = classify_extension(hi_p, tot_p)
        assert status == status_p
        if status is None:
            assert base_p == perm[base]

    @given(st.tuples(*(st.integers(0, 30) for _ in range(4))))
    def test_scaling_up_never_creates_deadend(self, counts):
        """Adding more support never turns an extension into a dead end."""
        from repro.core.extension import WalkStatus

        status, _ = classify_extension(counts, counts)
        bigger = tuple(c + 2 for c in counts)
        status2, _ = classify_extension(bigger, bigger)
        if status is None or status == WalkStatus.FORK:
            assert status2 != WalkStatus.RUNOUT


class TestOrientationProperties:
    @given(dna, dna, dna)
    def test_apply_extensions_roundtrip(self, left, mid, right):
        if not mid:
            mid = "A"
        out = apply_extensions({0: mid}, {(0, 0): left, (0, 1): right})
        assert out[0] == revcomp(left) + mid + right
        assert len(out[0]) == len(left) + len(mid) + len(right)

    @given(dna.filter(lambda s: len(s) >= 20))
    def test_left_right_symmetry(self, genome):
        """Extending rc(contig) rightward == extending contig leftward."""
        contig = genome[5:]
        missing = genome[:5]
        # if a walk recovered exactly `missing`, apply_extensions restores
        ext_left = revcomp(missing)
        out = apply_extensions({0: contig}, {(0, 0): ext_left})
        assert out[0] == genome
