"""Tests for device-batch packing (gpu_batch) and kernel internals."""

import numpy as np
import pytest

from repro.core.config import LocalAssemblyConfig
from repro.core.cpu_local_assembly import build_kmer_table
from repro.core.extension_kernel import build_table_v2, mer_walk_gpu
from repro.core.gpu_batch import (
    EMPTY_PTR,
    ext_capacity,
    max_rounds,
    pack_batch,
)
from repro.core.tasks import RIGHT, ExtensionTask
from repro.gpusim.counters import KernelCounters
from repro.gpusim.kernel import GpuContext
from repro.gpusim.warp import Warp
from repro.sequence.dna import encode, random_dna


def _task(rng, cid=0, n_reads=8, read_len=60, contig_len=80):
    genome = random_dna(400, rng)
    reads = tuple(
        encode(genome[(i * 17) % 300 : (i * 17) % 300 + read_len])
        for i in range(n_reads)
    )
    quals = tuple(np.full(read_len, 40, dtype=np.uint8) for _ in range(n_reads))
    return ExtensionTask(
        cid=cid, side=RIGHT, contig=encode(genome[:contig_len]),
        reads=reads, quals=quals,
    )


class TestRounds:
    def test_max_rounds_bound(self):
        cfg = LocalAssemblyConfig(k_init=21, k_min=13, k_max=63, k_step=8)
        # up: (63-21)/8 = 5; down: (21-13)/8 = 1; +1 initial
        assert max_rounds(cfg) == 7

    def test_ext_capacity(self):
        cfg = LocalAssemblyConfig(k_init=21, k_min=13, k_max=63, k_step=8,
                                  max_walk_len=100)
        assert ext_capacity(cfg) == 700


class TestPackBatch:
    @pytest.fixture
    def packed(self, rng):
        cfg = LocalAssemblyConfig(k_init=21, max_walk_len=50)
        ctx = GpuContext()
        tasks = [_task(rng, cid=i, n_reads=3 + i) for i in range(3)]
        return ctx, pack_batch(ctx, tasks, cfg), tasks, cfg

    def test_reads_concatenated(self, packed):
        _, batch, tasks, _ = packed
        total = sum(t.total_read_bases for t in tasks)
        assert batch.reads_buf.nbytes == total
        assert batch.quals_buf.nbytes == total
        assert int(batch.read_offsets[-1]) == total

    def test_task_read_ranges(self, packed):
        _, batch, tasks, _ = packed
        for i, t in enumerate(tasks):
            assert len(batch.task_reads(i)) == t.n_reads
        # read content round-trips
        r0 = batch.read_offsets[0]
        assert np.array_equal(
            batch.reads_buf.data[r0 : r0 + tasks[0].reads[0].size],
            tasks[0].reads[0],
        )

    def test_seq_buf_holds_contig_tail(self, packed):
        _, batch, tasks, cfg = packed
        for i, t in enumerate(tasks):
            so = int(batch.seq_offsets[i])
            tail = t.contig[-cfg.k_max :]
            assert np.array_equal(
                batch.seq_buf.data[so : so + tail.size], tail
            )
            assert batch.seq_len[i] == tail.size

    def test_tables_empty_initialised(self, packed):
        _, batch, _, _ = packed
        assert (batch.ht_ptr.data == EMPTY_PTR).all()
        assert (batch.vis_ptr.data == EMPTY_PTR).all()
        assert (batch.ht_hi.data == 0).all()

    def test_ht_regions_match_layout(self, packed):
        _, batch, tasks, _ = packed
        for i, t in enumerate(tasks):
            s, e = batch.ht_region(i)
            assert e - s == t.total_read_bases

    def test_transfer_cost_counted(self, packed):
        ctx, _, _, _ = packed
        assert ctx.transfer_bytes > 0


class TestKernelPieces:
    def test_gpu_table_contents_match_cpu(self, rng):
        """The v2 warp build produces exactly the CPU dict's tallies."""
        cfg = LocalAssemblyConfig(k_init=21)
        ctx = GpuContext()
        task = _task(rng, n_reads=6)
        batch = pack_batch(ctx, [task], cfg)
        warp = Warp(KernelCounters())
        build_table_v2(warp, batch, 0, 21)

        cpu = build_kmer_table(task, 21, cfg.hi_q_thresh)
        # collect the GPU table: slot -> (key bytes, hi, total)
        s, e = batch.ht_region(0)
        gpu = {}
        for slot in range(s, e):
            ptr = int(batch.ht_ptr.data[slot])
            if ptr == EMPTY_PTR:
                continue
            key = batch.reads_buf.data[ptr : ptr + 21].tobytes()
            hi = batch.ht_hi.data[slot * 4 : slot * 4 + 4].tolist()
            tot = batch.ht_total.data[slot * 4 : slot * 4 + 4].tolist()
            gpu[key] = hi + tot
        assert gpu == cpu

    def test_walk_extends_like_cpu(self, rng):
        from repro.core.cpu_local_assembly import mer_walk

        cfg = LocalAssemblyConfig(k_init=21, max_walk_len=80)
        ctx = GpuContext()
        task = _task(rng, n_reads=10, contig_len=60)
        batch = pack_batch(ctx, [task], cfg)
        warp = Warp(KernelCounters())
        build_table_v2(warp, batch, 0, 21)
        n_app, status = mer_walk_gpu(warp, batch, 0, 21)

        table = build_kmer_table(task, 21, cfg.hi_q_thresh)
        walk, cpu_status = mer_walk(task.contig, table, 21, cfg)
        assert status == cpu_status
        assert n_app == len(walk)
        so = int(batch.seq_offsets[0])
        tail = task.contig[-cfg.k_max :]
        got = batch.seq_buf.data[so + tail.size : so + tail.size + n_app]
        assert got.tolist() == walk
