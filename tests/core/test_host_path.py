"""The host path: vectorised staging, buffer arenas, fusion, profiling.

The PR's contract is that every host-path optimisation is *unobservable*
in the results: the vectorised ``stage_batch`` and the arena-backed
``upload_batch`` are byte-identical to the straightforward per-task
reference, fused dispatch reports the exact per-batch launches the
unfused schedule would, and the profiler is measurement only.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro.core.driver as driver_mod
from repro.core.config import LocalAssemblyConfig
from repro.core.cpu_local_assembly import run_local_assembly_cpu
from repro.core.driver import GpuLocalAssembler, shutdown_stager
from repro.core.gpu_batch import (
    DeviceArena,
    LRUDict,
    StagingArena,
    WIN_CACHE_CAP,
    ext_capacity,
    fuse_staged,
    stage_batch,
    upload_batch,
)
from repro.core.ht_sizing import plan_layout
from repro.core.tasks import LEFT, RIGHT, ExtensionTask, TaskSet
from repro.gpusim._fastops import run_head_positions, run_heads
from repro.gpusim.kernel import GpuContext
from repro.gpusim.shmem import shared_memory_available
from repro.perf import PHASES, HostProfiler
from repro.sequence.dna import encode, random_dna


def _tiling_task(genome, contig_end, read_len=70, stride=6, cid=0, side=RIGHT):
    reads, quals = [], []
    for i in range(0, len(genome) - read_len + 1, stride):
        reads.append(encode(genome[i : i + read_len]))
        quals.append(np.full(read_len, 40, dtype=np.uint8))
    return ExtensionTask(
        cid=cid, side=side, contig=encode(genome[:contig_end]),
        reads=tuple(reads), quals=tuple(quals),
    )


@pytest.fixture(scope="module")
def workload():
    """Mixed tasks: both sides, varied read counts, short contigs, a
    zero-read task — every staging edge case."""
    rng = np.random.default_rng(42)
    tasks = []
    for cid in range(5):
        tasks.append(_tiling_task(random_dna(320, rng), 120, cid=cid, stride=5))
    for cid in range(5, 8):
        side = LEFT if cid % 2 else RIGHT
        tasks.append(
            _tiling_task(random_dna(220, rng), 90, cid=cid, stride=25, side=side)
        )
    # contig shorter than k_max: the tail is the whole contig
    tasks.append(_tiling_task(random_dna(150, rng), 20, cid=8, stride=20))
    tasks.append(
        ExtensionTask(cid=9, side=RIGHT, contig=encode(random_dna(80, rng)),
                      reads=(), quals=())
    )
    return TaskSet(tasks)


@pytest.fixture(scope="module")
def config():
    return LocalAssemblyConfig(k_init=21, max_walk_len=150)


def _reference_stage(tasks, config):
    """The pre-PR staging logic: per-task Python loops, no arenas.

    Deliberately the naive transcription of the layout contract — the
    vectorised ``stage_batch`` must reproduce it byte for byte.
    """
    layout = plan_layout(tasks)
    read_offsets, reads_parts, quals_parts, task_read_start = [0], [], [], [0]
    for t in tasks:
        for r, q in zip(t.reads, t.quals):
            reads_parts.append(np.asarray(r, dtype=np.uint8))
            quals_parts.append(np.asarray(q, dtype=np.uint8))
            read_offsets.append(read_offsets[-1] + len(r))
        task_read_start.append(task_read_start[-1] + t.n_reads)
    tail_cap = config.k_max
    e_cap = ext_capacity(config)
    per_task_seq = tail_cap + e_cap
    seq_host = np.zeros(len(tasks) * per_task_seq, dtype=np.uint8)
    seq_offsets = np.arange(len(tasks) + 1, dtype=np.int64) * per_task_seq
    seq_len = np.zeros(len(tasks), dtype=np.int64)
    for i, t in enumerate(tasks):
        tail = t.contig[-tail_cap:]
        seq_host[seq_offsets[i] : seq_offsets[i] + tail.size] = tail
        seq_len[i] = tail.size
    cat = lambda parts: (
        np.concatenate(parts) if parts else np.empty(0, dtype=np.uint8)
    )
    return {
        "layout_sizes": layout.sizes,
        "layout_offsets": layout.offsets,
        "reads_host": cat(reads_parts),
        "quals_host": cat(quals_parts),
        "read_offsets": np.asarray(read_offsets, dtype=np.int64),
        "task_read_start": np.asarray(task_read_start, dtype=np.int64),
        "seq_host": seq_host,
        "seq_offsets": seq_offsets,
        "seq_len_host": seq_len,
    }


def _staged_arrays(staged):
    return {
        "layout_sizes": staged.layout.sizes,
        "layout_offsets": staged.layout.offsets,
        "reads_host": staged.reads_host,
        "quals_host": staged.quals_host,
        "read_offsets": staged.read_offsets,
        "task_read_start": staged.task_read_start,
        "seq_host": staged.seq_host,
        "seq_offsets": staged.seq_offsets,
        "seq_len_host": staged.seq_len_host,
    }


class TestStagingBitIdentity:
    def test_matches_reference_no_arena(self, workload, config):
        ref = _reference_stage(list(workload), config)
        got = _staged_arrays(stage_batch(list(workload), config))
        for name, want in ref.items():
            have = got[name]
            assert have.dtype == want.dtype, name
            assert np.array_equal(have, want), name

    def test_matches_reference_with_recycled_arena(self, workload, config):
        ref = _reference_stage(list(workload), config)
        arena = StagingArena()
        # three passes: cold, warm, and warm-after-a-different-shape so
        # recycled (grown) buffers are actually exercised
        stage_batch(list(workload)[:3], config, arena=arena)
        for _ in range(2):
            got = _staged_arrays(stage_batch(list(workload), config, arena=arena))
            for name, want in ref.items():
                assert np.array_equal(got[name], want), name

    def test_metadata_survives_arena_reuse(self, workload, config):
        # Offsets/lengths are retained inside DeviceBatch past staging;
        # restaging into the same arena must not corrupt them.
        arena = StagingArena()
        a = stage_batch(list(workload), config, arena=arena)
        kept = {
            k: v.copy()
            for k, v in _staged_arrays(a).items()
            if k not in ("reads_host", "quals_host", "seq_host")
        }
        stage_batch(list(workload)[:4], config, arena=arena)  # reuse the slot
        for name, want in kept.items():
            assert np.array_equal(_staged_arrays(a)[name], want), name


class TestArenaUpload:
    def test_device_buffers_byte_identical(self, workload, config):
        """Arena-recycled uploads carry the same bytes as fresh ones for
        every buffer the kernel *reads before writing* (reads/quals/seq/
        out_ext_len).  ht/vis skip the upload-time fill by design — the
        kernels clear each region at the start of every k-round."""
        tasks = list(workload)
        plain_ctx = GpuContext()
        plain = upload_batch(plain_ctx, stage_batch(tasks, config))

        ctx = GpuContext()
        arena = DeviceArena(ctx)
        stream = ctx.stream("copy0")
        # Round-trip through the arena so the second upload is recycled.
        first, _ = upload_batch(
            ctx, stage_batch(tasks, config), stream=stream, arena=arena
        )
        from repro.core.gpu_batch import free_batch

        free_batch(ctx, first, arena=arena)
        batch, _ = upload_batch(
            ctx, stage_batch(tasks, config), stream=stream, arena=arena
        )
        assert arena.hits > 0
        for attr in ("reads_buf", "quals_buf", "seq_buf", "out_ext_len"):
            assert np.array_equal(
                getattr(batch, attr).data, getattr(plain, attr).data
            ), attr
        for arr in (
            "read_offsets", "task_read_start", "seq_offsets", "seq_len",
        ):
            assert np.array_equal(getattr(batch, arr), getattr(plain, arr)), arr

    def test_device_arena_recycles_and_drains(self):
        ctx = GpuContext()
        arena = DeviceArena(ctx)
        a = arena.alloc("scratch", 128, np.int64)
        arena.release("scratch", a)
        b = arena.alloc("scratch", 128, np.int64)
        assert b is a and arena.hits == 1
        # different shape class -> fresh allocation
        c = arena.alloc("scratch", 256, np.int64)
        assert c is not a
        in_use = ctx.allocator.bytes_in_use
        arena.release("scratch", b)
        arena.release("scratch", c)
        arena.drain()
        assert ctx.allocator.bytes_in_use < in_use


class TestEngineIdentityWithArenas:
    @pytest.mark.parametrize("engine", ["sequential", "batched", "pool"])
    def test_extensions_match_cpu_reference(self, workload, config, engine):
        if engine == "pool" and not shared_memory_available():
            pytest.skip("POSIX shared memory unavailable")
        cpu, _ = run_local_assembly_cpu(workload, config)
        kw = {"workers": 2} if engine == "pool" else {}
        report = GpuLocalAssembler(config, engine=engine, **kw).run(workload)
        assert report.extensions == cpu


class TestFusedDispatch:
    def _per_warp_stream(self, report):
        return [n for l in report.launches for n in l.per_warp_inst]

    @pytest.mark.parametrize("prefetch", [1, 2, 4])
    def test_fused_overlap_matches_serial(self, workload, config, prefetch):
        off = GpuLocalAssembler(config, engine="batched", batch_cap=2).run(workload)
        on = GpuLocalAssembler(
            config, engine="batched", batch_cap=2, overlap="on", prefetch=prefetch
        ).run(workload)
        assert on.extensions == off.extensions
        assert self._per_warp_stream(on) == self._per_warp_stream(off)
        assert on.n_batches == off.n_batches
        # per-sub launches are reported (not one merged mega-launch)
        assert [l.n_warps for l in on.launches] == [
            l.n_warps for l in off.launches
        ]
        assert on.h2d_bytes == off.h2d_bytes
        assert on.d2h_bytes == off.d2h_bytes

    def test_fuse_staged_concatenates_layouts(self, workload, config):
        tasks = list(workload)
        whole = stage_batch(tasks, config)
        fused = fuse_staged(
            [stage_batch(tasks[:4], config), stage_batch(tasks[4:], config)]
        )
        for name, want in _staged_arrays(whole).items():
            assert np.array_equal(_staged_arrays(fused)[name], want), name

    def test_finalize_range_partitions_the_sweep(self, workload, config):
        """Fused counters split per sub-batch exactly: each range's
        instruction stream equals the same warps launched alone."""
        whole = GpuLocalAssembler(config, engine="batched").run(workload)
        split = GpuLocalAssembler(config, engine="batched", batch_cap=3).run(
            workload
        )
        assert self._per_warp_stream(whole) == self._per_warp_stream(split)
        assert (
            whole.merged_counters().warp_inst == split.merged_counters().warp_inst
        )


class TestBatchCap:
    def test_cap_chunks_batches(self, workload, config):
        uncapped = GpuLocalAssembler(config).run(workload)
        capped = GpuLocalAssembler(config, batch_cap=2).run(workload)
        assert capped.n_batches > uncapped.n_batches
        assert capped.extensions == uncapped.extensions

    def test_cap_validation(self, config):
        with pytest.raises(ValueError, match="batch_cap"):
            GpuLocalAssembler(config, batch_cap=0)


class TestHostProfiler:
    def test_driver_threads_profile(self, workload, config):
        report = GpuLocalAssembler(config, profile_host=True).run(workload)
        prof = report.host_profile
        assert prof is not None
        for phase in ("stage", "upload", "dispatch", "unpack", "free"):
            assert prof.phase_count(phase) == report.n_batches, phase
        assert prof.phase_total_s("dispatch") > 0
        # the dispatch phase brackets the engine sweep it attributes
        assert prof.phase_total_s("dispatch") >= report.host_dispatch_s() > 0
        off = GpuLocalAssembler(config).run(workload)
        assert off.host_profile is None

    def test_unit_behaviour(self):
        prof = HostProfiler()
        with prof.phase("stage", "b0"):
            pass
        prof.add("upload", "b0", 0.0, 0.25)
        assert prof.phase_count("stage") == 1
        assert prof.phase_total_s("upload") == 0.25
        assert prof.per_batch_s("stage", "upload") > 0
        summary = prof.summary()
        assert set(PHASES) <= set(summary["phases"])
        events = prof.chrome_events()
        assert any(e.get("ph") == "X" for e in events)
        disabled = HostProfiler(enabled=False)
        with disabled.phase("stage", "x"):
            pass
        assert disabled.phase_count("stage") == 0

    def test_overlapped_profile_counts_every_batch(self, workload, config):
        report = GpuLocalAssembler(
            config, overlap="on", prefetch=2, batch_cap=2, profile_host=True
        ).run(workload)
        prof = report.host_profile
        assert prof.phase_count("stage") >= report.n_batches
        assert prof.phase_count("unpack") == report.n_batches


class TestLRUDict:
    def test_bounded_eviction(self):
        d = LRUDict(maxsize=3)
        for i in range(3):
            d[i] = i * 10
        d[0]  # refresh 0 -> oldest is now 1
        d[3] = 30
        assert 1 not in d and set(d) == {0, 2, 3}
        assert len(d) <= 3

    def test_get_refreshes_recency(self):
        d = LRUDict(maxsize=2)
        d["a"], d["b"] = 1, 2
        assert d.get("a") == 1
        d["c"] = 3
        assert "b" not in d and "a" in d
        assert d.get("missing", 42) == 42

    def test_default_cap(self):
        d = LRUDict()
        assert d.maxsize == WIN_CACHE_CAP


class TestFastOps:
    @pytest.mark.parametrize(
        "keys",
        [
            np.array([], dtype=np.int64),
            np.array([7], dtype=np.int64),
            np.array([1, 1, 2, 2, 2, 5, 9, 9], dtype=np.int64),
            np.zeros(16, dtype=np.int64),
        ],
    )
    def test_run_heads_matches_naive(self, keys):
        naive = np.array(
            [i == 0 or keys[i] != keys[i - 1] for i in range(keys.size)],
            dtype=bool,
        )
        assert np.array_equal(run_heads(keys), naive)
        assert np.array_equal(run_head_positions(keys), np.nonzero(naive)[0])


@pytest.mark.bench_smoke
def test_overlapped_wall_clock_beats_serial_bench_smoke():
    """CI gate: on the 100-warp reference workload (the BENCH_overlap
    schedule — quantum 5, batched engine), the best overlapped
    configuration must win *wall clock*, not just the modelled critical
    path.  Pre-PR the overlapped driver regressed to 0.34x here; the
    vectorised staging + arenas + fused dispatch are what make prefetch
    profitable in host seconds, and this smoke keeps that true."""
    import time

    rng = np.random.default_rng(7)
    tasks = []
    for cid in range(100):
        genome = random_dna(320, rng)
        reads = [
            encode(genome[i : i + 70])
            for i in range(0, len(genome) - 70 + 1, 5)
        ]
        quals = [np.full(70, 40, dtype=np.uint8) for _ in reads]
        tasks.append(
            ExtensionTask(cid=cid, side=RIGHT, contig=encode(genome[:120]),
                          reads=tuple(reads), quals=tuple(quals))
        )
    tasks = TaskSet(tasks)
    cfg = LocalAssemblyConfig(k_init=21, max_walk_len=150)

    def run(overlap, prefetch=1, repeats=2):
        best_wall, best = float("inf"), None
        for _ in range(repeats):
            t0 = time.perf_counter()
            report = GpuLocalAssembler(
                cfg, engine="batched", overlap=overlap, prefetch=prefetch,
                batch_cap=5,
            ).run(tasks)
            wall = time.perf_counter() - t0
            if wall < best_wall:
                best_wall, best = wall, report
        return best, best_wall

    run("off", repeats=1)  # warmup: imports, task pack caches
    serial, serial_wall = run("off")
    overlapped, overlap_wall = run("on", prefetch=4)

    assert overlapped.extensions == serial.extensions
    speedup = serial_wall / overlap_wall
    assert speedup >= 1.0, (
        f"overlapped driver must not lose wall clock on the reference "
        f"workload: {overlap_wall:.2f}s vs serial {serial_wall:.2f}s "
        f"({speedup:.2f}x)"
    )


class TestProfilerThreadSafety:
    """Concurrent jobs share profiling from multiple worker threads; the
    record list must never tear or drop entries under contention."""

    def test_concurrent_phase_and_add(self):
        prof = HostProfiler()
        n_threads, per_thread = 8, 200
        barrier = threading.Barrier(n_threads)

        def work(tid):
            barrier.wait()
            for i in range(per_thread):
                with prof.phase("stage", f"t{tid}-b{i}"):
                    pass
                prof.add("upload", f"t{tid}-b{i}", 0.0, 0.001)

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert prof.phase_count("stage") == n_threads * per_thread
        assert prof.phase_count("upload") == n_threads * per_thread
        assert prof.phase_total_s("upload") == pytest.approx(
            n_threads * per_thread * 0.001
        )

    def test_snapshot_is_stable_while_mutating(self):
        prof = HostProfiler()
        n_adds = 5000

        def mutate():
            for i in range(n_adds):
                prof.add("stage", f"b{i}", 0.0, 0.001)

        t = threading.Thread(target=mutate)
        t.start()
        try:
            # read paths must stay consistent while the writer runs
            while t.is_alive():
                snap = prof.snapshot()
                assert prof.phase_count("stage") >= len(snap) - 1
                prof.summary()
        finally:
            t.join()
        assert prof.phase_count("stage") == n_adds
        assert len(prof.to_json()) > 0


class TestStagerShutdown:
    def test_idempotent(self):
        shutdown_stager()
        shutdown_stager()  # no executor alive: still a no-op
        assert driver_mod._STAGER is None

    def test_recreated_after_shutdown(self, workload, config):
        shutdown_stager()
        first = GpuLocalAssembler(config, overlap="on", prefetch=2).run(
            workload
        )
        assert driver_mod._STAGER is not None
        shutdown_stager()
        assert driver_mod._STAGER is None
        # the next overlapped run lazily brings the stager back
        second = GpuLocalAssembler(config, overlap="on", prefetch=2).run(
            workload
        )
        assert driver_mod._STAGER is not None
        assert second.extensions == first.extensions

    def test_concurrent_shutdown_and_create(self, workload, config):
        errors = []

        def runner():
            try:
                GpuLocalAssembler(config, overlap="on", prefetch=2).run(
                    workload
                )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=runner) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        shutdown_stager()
        assert errors == []
