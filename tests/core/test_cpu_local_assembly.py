"""Tests for the CPU reference local assembler (the baseline/oracle)."""

import numpy as np
import pytest

from repro.core.config import LocalAssemblyConfig
from repro.core.cpu_local_assembly import (
    build_kmer_table,
    extend_task_cpu,
    mer_walk,
    run_local_assembly_cpu,
)
from repro.core.extension import WalkStatus
from repro.core.tasks import RIGHT, ExtensionTask, TaskSet
from repro.sequence.dna import encode, random_dna


def _mk_task(contig, reads, quals=None, cid=0):
    reads_c = tuple(encode(r) for r in reads)
    if quals is None:
        quals_c = tuple(np.full(len(r), 40, dtype=np.uint8) for r in reads)
    else:
        quals_c = tuple(np.asarray(q, dtype=np.uint8) for q in quals)
    return ExtensionTask(cid=cid, side=RIGHT, contig=encode(contig), reads=reads_c, quals=quals_c)


def _tiling_task(genome, contig_end, rng, read_len=80, stride=7, start=0):
    reads = [
        genome[i : i + read_len]
        for i in range(start, len(genome) - read_len + 1, stride)
    ]
    return _mk_task(genome[:contig_end], reads)


class TestBuildTable:
    def test_matches_naive_reference(self, rng):
        """The vectorised build equals a per-k-mer Python loop."""
        reads = [random_dna(60, rng) for _ in range(5)]
        quals = [rng.integers(2, 42, size=60).astype(np.uint8) for _ in range(5)]
        task = _mk_task("ACGT" * 10, reads, quals)
        k, hi_q = 11, 20
        table = build_kmer_table(task, k, hi_q)

        naive: dict[bytes, list[int]] = {}
        for codes, q in zip(task.reads, task.quals):
            for pos in range(codes.size - k):
                key = codes[pos : pos + k].tobytes()
                nxt = int(codes[pos + k])
                e = naive.setdefault(key, [0] * 8)
                e[4 + nxt] += 1
                if q[pos + k] >= hi_q:
                    e[nxt] += 1
        assert table == naive

    def test_empty_task(self):
        task = _mk_task("ACGTACGT", [])
        assert build_kmer_table(task, 5, 20) == {}

    def test_k_longer_than_reads(self):
        task = _mk_task("ACGTACGT", ["ACGT"])
        assert build_kmer_table(task, 21, 20) == {}

    def test_kmer_at_read_end_has_no_ext(self):
        task = _mk_task("ACGT", ["ACGTA"])
        table = build_kmer_table(task, 5, 20)
        assert table == {}  # the only 5-mer has no following base


class TestMerWalk:
    def test_walks_genome(self, rng):
        genome = random_dna(300, rng)
        task = _tiling_task(genome, 100, rng)
        cfg = LocalAssemblyConfig(k_init=21, max_walk_len=300, min_viable=2)
        table = build_kmer_table(task, 21, cfg.hi_q_thresh)
        walk, status = mer_walk(encode(genome[:100]), table, 21, cfg)
        from repro.sequence.dna import decode

        ext = decode(np.array(walk, dtype=np.uint8))
        assert genome[100 : 100 + len(ext)] == ext
        assert len(ext) > 100  # reads cover well past the contig end

    def test_short_seq_runout(self):
        cfg = LocalAssemblyConfig()
        walk, status = mer_walk(encode("ACGT"), {}, 21, cfg)
        assert walk == [] and status == WalkStatus.RUNOUT

    def test_max_len_cap(self, rng):
        genome = random_dna(400, rng)
        task = _tiling_task(genome, 100, rng)
        cfg = LocalAssemblyConfig(k_init=21, max_walk_len=10)
        table = build_kmer_table(task, 21, cfg.hi_q_thresh)
        walk, status = mer_walk(encode(genome[:100]), table, 21, cfg)
        assert len(walk) == 10 and status == WalkStatus.MAX_LEN

    def test_loop_detected_on_tandem_repeat(self):
        unit = "ACGTTGCACTG"  # 11bp unit, no internal 5-mer repeats
        circular = unit * 8
        reads = [circular[i : i + 30] for i in range(0, len(circular) - 30, 3)]
        task = _mk_task(unit * 2, reads)
        cfg = LocalAssemblyConfig(k_init=5, k_min=5, max_walk_len=300, min_viable=2)
        table = build_kmer_table(task, 5, cfg.hi_q_thresh)
        walk, status = mer_walk(encode(unit * 2), table, 5, cfg)
        assert status == WalkStatus.LOOP
        assert len(walk) <= len(unit) + 5

    def test_fork_stops_walk(self):
        stem = "ACGTACGTCCAT"
        reads = [stem + "AAAAA"] * 3 + [stem + "TTTTT"] * 3
        task = _mk_task(stem, reads)
        cfg = LocalAssemblyConfig(k_init=7, k_min=7, max_walk_len=50)
        table = build_kmer_table(task, 7, cfg.hi_q_thresh)
        walk, status = mer_walk(encode(stem), table, 7, cfg)
        assert status == WalkStatus.FORK
        assert len(walk) == 0

    def test_low_quality_extension_ignored(self):
        stem = "ACGTACGTCCAT"
        # three low-quality observations of the same extension
        quals = [np.array([40] * len(stem) + [2] * 5, dtype=np.uint8)] * 3
        task = _mk_task(stem, [stem + "AAAAA"] * 3, quals)
        cfg = LocalAssemblyConfig(k_init=7, k_min=7, min_viable=2)
        table = build_kmer_table(task, 7, cfg.hi_q_thresh)
        # hi counts are 0 but totals pass the fallback -> extension proceeds
        walk, status = mer_walk(encode(stem), table, 7, cfg)
        assert len(walk) > 0


class TestKShiftIntegration:
    def test_upshift_resolves_repeat_fork(self, rng):
        """A fork caused by a repeat shorter than the upshifted k is
        resolved after the k-shift: the walk continues further."""
        rep = random_dna(24, rng)  # longer than k_init=21? no: 24 > 21
        a_arm, b_arm = random_dna(120, rng), random_dna(120, rng)
        tail_a, tail_b = random_dna(120, rng), random_dna(120, rng)
        # genome has the repeat at two loci with different continuations
        locus_a = a_arm + rep + tail_a
        locus_b = b_arm + rep + tail_b
        reads = []
        for locus in (locus_a, locus_b):
            reads += [locus[i : i + 60] for i in range(0, len(locus) - 60 + 1, 4)]
        task = _mk_task(a_arm, reads)
        cfg = LocalAssemblyConfig(k_init=21, k_step=12, k_min=13, k_max=45, max_walk_len=200)
        result = extend_task_cpu(task, cfg)
        # at k=21 the walk forks inside the 24bp repeat; k=33 spans it
        statuses = [r.status for r in result.rounds]
        ks = [r.k for r in result.rounds]
        assert WalkStatus.FORK in statuses
        assert any(k > 21 for k in ks)
        # and the final extension continues into tail_a
        assert tail_a[:20] in (a_arm + result.extension)[len(a_arm) - 5 :] or len(
            result.extension
        ) > len(rep)

    def test_zero_read_task_empty(self):
        task = _mk_task("ACGTACGTACGTACGTACGTACGTA", [])
        result = extend_task_cpu(task, LocalAssemblyConfig())
        assert result.extension == "" and result.rounds == ()

    def test_run_over_taskset_stats(self, rng):
        genome = random_dna(300, rng)
        t1 = _tiling_task(genome, 100, rng)
        t2 = _mk_task("ACGTACGTACGTACGTACGTACGTA", [], cid=1)
        exts, stats = run_local_assembly_cpu(TaskSet([t1, t2]))
        assert stats.n_tasks == 2
        assert stats.n_tasks_with_reads == 1
        assert stats.n_extended == 1
        assert exts[(1, RIGHT)] == ""
        assert len(exts[(0, RIGHT)]) == stats.total_extension_bases
        assert stats.mean_walk_length() > 0

    def test_extension_matches_genome(self, rng):
        """End to end: the extension reproduces the true genome sequence."""
        genome = random_dna(500, rng)
        task = _tiling_task(genome, 150, rng)
        cfg = LocalAssemblyConfig(k_init=21, max_walk_len=400)
        result = extend_task_cpu(task, cfg)
        extended = genome[:150] + result.extension
        assert extended == genome[: len(extended)]
        assert len(result.extension) > 150
