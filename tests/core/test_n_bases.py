"""Differential tests with ambiguous (N) bases in reads and contigs.

Synthetic communities never emit N, but real FASTQ input does; every
implementation must skip N-containing k-mers identically.
"""

import numpy as np
import pytest

from repro.core.config import LocalAssemblyConfig
from repro.core.cpu_local_assembly import build_kmer_table, run_local_assembly_cpu
from repro.core.driver import GpuLocalAssembler
from repro.core.tasks import RIGHT, ExtensionTask, TaskSet
from repro.sequence.dna import encode, random_dna


def _task_with_ns(rng, n_frac=0.02):
    genome = random_dna(400, rng)
    reads, quals = [], []
    for i in range(0, 330, 6):
        r = list(genome[i : i + 70])
        for j in range(70):
            if rng.random() < n_frac:
                r[j] = "N"
        reads.append(encode("".join(r)))
        quals.append(np.full(70, 40, dtype=np.uint8))
    return ExtensionTask(
        cid=0, side=RIGHT, contig=encode(genome[:120]),
        reads=tuple(reads), quals=tuple(quals),
    )


class TestNBases:
    def test_table_skips_n_kmers(self, rng):
        task = _task_with_ns(rng, n_frac=0.05)
        table = build_kmer_table(task, 21, 20)
        for key in table:
            assert 4 not in key  # no N code in any stored k-mer

    @pytest.mark.parametrize("version", ["v1", "v2"])
    def test_gpu_equals_cpu_with_ns(self, rng, version):
        tasks = TaskSet([_task_with_ns(rng) for _ in range(3)])
        cfg = LocalAssemblyConfig(k_init=21, max_walk_len=120)
        cpu, _ = run_local_assembly_cpu(tasks, cfg)
        gpu = GpuLocalAssembler(cfg, kernel_version=version).run(tasks)
        assert gpu.extensions == cpu

    def test_contig_with_ns_still_extends(self, rng):
        """N in the contig body (outside the walk seed) is harmless."""
        genome = random_dna(400, rng)
        contig = list(genome[:120])
        contig[10] = "N"  # far from the extension end
        reads = tuple(encode(genome[i : i + 70]) for i in range(60, 330, 6))
        quals = tuple(np.full(70, 40, dtype=np.uint8) for _ in reads)
        task = ExtensionTask(cid=0, side=RIGHT, contig=encode("".join(contig)),
                             reads=reads, quals=quals)
        cfg = LocalAssemblyConfig(k_init=21, max_walk_len=120)
        cpu, _ = run_local_assembly_cpu(TaskSet([task]), cfg)
        gpu = GpuLocalAssembler(cfg).run(TaskSet([task]))
        assert gpu.extensions == cpu
        assert len(cpu[(0, RIGHT)]) > 0

    def test_all_n_reads_no_extension(self, rng):
        task = ExtensionTask(
            cid=0, side=RIGHT, contig=encode(random_dna(100, rng)),
            reads=(encode("N" * 60),),
            quals=(np.full(60, 40, dtype=np.uint8),),
        )
        cfg = LocalAssemblyConfig(k_init=21)
        cpu, _ = run_local_assembly_cpu(TaskSet([task]), cfg)
        gpu = GpuLocalAssembler(cfg).run(TaskSet([task]))
        assert cpu[(0, RIGHT)] == "" and gpu.extensions == cpu
