"""The double-buffered overlapping driver (GpuLocalAssembler overlap="on").

The tentpole guarantee: overlap is a pure *scheduling* change.  Extensions
are bit-identical to the synchronous driver on every engine; what changes
is the stream timeline — staging and transfers hide behind kernels, and
the reported critical path shrinks accordingly.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import LocalAssemblyConfig
from repro.core.cpu_local_assembly import run_local_assembly_cpu
from repro.core.driver import GpuLocalAssembler
from repro.core.tasks import LEFT, RIGHT, ExtensionTask, TaskSet
from repro.gpusim.shmem import shared_memory_available
from repro.sequence.dna import encode, random_dna


def _tiling_task(genome, contig_end, read_len=70, stride=6, cid=0, side=RIGHT):
    reads, quals = [], []
    for i in range(0, len(genome) - read_len + 1, stride):
        reads.append(encode(genome[i : i + read_len]))
        quals.append(np.full(read_len, 40, dtype=np.uint8))
    return ExtensionTask(
        cid=cid, side=side, contig=encode(genome[:contig_end]),
        reads=tuple(reads), quals=tuple(quals),
    )


@pytest.fixture(scope="module")
def workload():
    """Tasks spanning bins 1-3, both sides, with an empty-read straggler."""
    rng = np.random.default_rng(2025)
    tasks = []
    for cid in range(4):
        tasks.append(_tiling_task(random_dna(320, rng), 120, cid=cid, stride=5))
    for cid in range(4, 7):
        side = LEFT if cid % 2 else RIGHT
        tasks.append(
            _tiling_task(random_dna(220, rng), 90, cid=cid, stride=30, side=side)
        )
    tasks.append(
        ExtensionTask(cid=7, side=RIGHT, contig=encode(random_dna(80, rng)),
                      reads=(), quals=())
    )
    for cid in (8, 9):
        tasks.append(_tiling_task(random_dna(280, rng), 100, cid=cid, stride=7))
    return TaskSet(tasks)


@pytest.fixture(scope="module")
def config():
    return LocalAssemblyConfig(k_init=21, max_walk_len=150)


def _per_warp_stream(report):
    """Per-warp instruction counts concatenated in launch order — the
    batching-invariant fingerprint of the executed work."""
    return [n for l in report.launches for n in l.per_warp_inst]


class TestBitIdentity:
    @pytest.mark.parametrize("engine", ["sequential", "batched"])
    def test_overlap_matches_serial_driver(self, workload, config, engine):
        off = GpuLocalAssembler(config, engine=engine, overlap="off").run(workload)
        on = GpuLocalAssembler(config, engine=engine, overlap="on").run(workload)
        assert on.extensions == off.extensions
        # Same per-task work in the same order — batching only moves the
        # batch boundaries (which can shift memory-coalescing counts at
        # the packed-buffer edges, so transaction totals may wiggle; the
        # instruction streams may not).
        assert _per_warp_stream(on) == _per_warp_stream(off)
        assert on.merged_counters().warp_inst == off.merged_counters().warp_inst
        assert sum(l.n_warps for l in on.launches) == sum(
            l.n_warps for l in off.launches
        )

    @pytest.mark.skipif(
        not shared_memory_available(), reason="no shared memory on this host"
    )
    def test_overlap_matches_serial_driver_pool(self, workload, config):
        off = GpuLocalAssembler(config, engine="pool", workers=2,
                                overlap="off").run(workload)
        on = GpuLocalAssembler(config, engine="pool", workers=2,
                               overlap="on").run(workload)
        assert on.extensions == off.extensions
        assert _per_warp_stream(on) == _per_warp_stream(off)

    def test_overlap_matches_cpu_reference(self, workload, config):
        cpu, _ = run_local_assembly_cpu(workload, config)
        on = GpuLocalAssembler(config, overlap="on", prefetch=3).run(workload)
        assert on.extensions == cpu

    @pytest.mark.parametrize("prefetch", [1, 2, 4])
    def test_prefetch_depth_never_changes_results(self, workload, config, prefetch):
        base = GpuLocalAssembler(config, overlap="off").run(workload)
        on = GpuLocalAssembler(config, overlap="on", prefetch=prefetch).run(workload)
        assert on.extensions == base.extensions

    def test_v1_kernel_overlaps_too(self, workload, config):
        off = GpuLocalAssembler(config, kernel_version="v1",
                                overlap="off").run(workload)
        on = GpuLocalAssembler(config, kernel_version="v1",
                               overlap="on").run(workload)
        assert on.extensions == off.extensions


class TestEdgeWorkloads:
    @pytest.mark.parametrize("overlap", ["off", "on"])
    def test_empty_taskset(self, config, overlap):
        report = GpuLocalAssembler(config, overlap=overlap).run(TaskSet([]))
        assert report.extensions == {}
        assert report.n_batches == 0 and report.launches == []
        assert report.critical_path_s == 0.0

    @pytest.mark.parametrize("overlap", ["off", "on"])
    def test_bin1_only_workload_never_launches(self, config, overlap):
        rng = np.random.default_rng(3)
        tasks = TaskSet([
            ExtensionTask(cid=c, side=RIGHT, contig=encode(random_dna(90, rng)),
                          reads=(), quals=())
            for c in range(3)
        ])
        report = GpuLocalAssembler(config, overlap=overlap).run(tasks)
        assert report.extensions == {(c, RIGHT): "" for c in range(3)}
        assert report.launches == [] and report.n_batches == 0
        assert report.h2d_bytes == 0 and report.d2h_bytes == 0


class TestPipelineShape:
    def test_overlap_splits_single_batch(self, workload, config):
        off = GpuLocalAssembler(config, overlap="off").run(workload)
        on = GpuLocalAssembler(config, overlap="on", prefetch=1).run(workload)
        # one serial batch per bin becomes prefetch+1 chunks, so the
        # pipeline has something to overlap
        assert on.n_batches > off.n_batches
        assert on.overlap == "on" and off.overlap == "off"

    def test_serial_critical_path_is_the_op_sum(self, workload, config):
        off = GpuLocalAssembler(config, overlap="off").run(workload)
        total = sum(op.dur_s for op in off.timeline.ops)
        assert off.critical_path_s == pytest.approx(total)
        # and it covers at least the modelled GPU work
        assert off.critical_path_s >= off.total_time_s

    def test_overlapped_critical_path_shorter_than_op_sum(self, workload, config):
        on = GpuLocalAssembler(config, overlap="on").run(workload)
        total = sum(op.dur_s for op in on.timeline.ops)
        assert on.critical_path_s < total
        # never shorter than the largest single op
        assert on.critical_path_s >= max(op.dur_s for op in on.timeline.ops)

    def test_bin3_launches_before_bin2(self, workload, config):
        on = GpuLocalAssembler(config, overlap="on").run(workload)
        bins = [l.bin for l in on.launches]
        assert "bin3" in bins and "bin2" in bins
        assert bins.index("bin3") < bins.index("bin2")


class TestShrunkD2H:
    def test_d2h_copies_only_extension_spans(self, workload, config):
        report = GpuLocalAssembler(config, overlap="off").run(workload)
        seq_buf_bytes = sum(
            op.nbytes for op in report.timeline.ops if op.name == "H2D seq"
        )
        assert seq_buf_bytes > 0
        # the old driver copied every seq_buf back wholesale; the span
        # copy moves only the appended extensions (plus the tiny
        # out_ext_len arrays)
        assert report.d2h_bytes < seq_buf_bytes
        ext_bytes = sum(len(e) for e in report.extensions.values())
        assert report.d2h_bytes >= ext_bytes

    def test_transfer_accounting_is_consistent(self, workload, config):
        report = GpuLocalAssembler(config, overlap="on").run(workload)
        assert report.h2d_bytes + report.d2h_bytes == report.transfer_bytes
        assert report.transfer_time_s > 0


class TestSanitizerInteraction:
    def test_sanitize_serializes_overlap(self, workload, config):
        report = GpuLocalAssembler(
            config, overlap="on", sanitize="full"
        ).run(workload)
        # shadow state is single-threaded: the run degrades to the
        # synchronous driver but stays clean and correct
        assert report.overlap == "off"
        assert report.sanitizer is not None and report.sanitizer.clean
        base = GpuLocalAssembler(config, overlap="off").run(workload)
        assert report.extensions == base.extensions


class TestValidation:
    def test_overlap_validation(self, config):
        with pytest.raises(ValueError, match="overlap"):
            GpuLocalAssembler(config, overlap="sometimes")

    def test_prefetch_validation(self, config):
        with pytest.raises(ValueError, match="prefetch"):
            GpuLocalAssembler(config, prefetch=0)

    def test_streams_validation(self, config):
        with pytest.raises(ValueError, match="streams"):
            GpuLocalAssembler(config, streams=0)


@pytest.mark.bench_smoke
def test_overlapped_run_exports_chrome_trace(workload, config, tmp_path):
    """A tiny overlapped run produces a loadable chrome://tracing file
    with kernel, copy and host slices on distinct lanes (the CI artifact)."""
    report = GpuLocalAssembler(config, overlap="on").run(workload)
    path = tmp_path / "overlap_trace.json"
    report.timeline.save_chrome_trace(path)
    trace = json.loads(path.read_text())
    slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    cats = {e["cat"] for e in slices}
    assert {"h2d", "kernel", "d2h", "host"} <= cats
    lanes = {e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"}
    assert "compute" in lanes and "host.stage" in lanes
    assert any(lane.startswith("copy") for lane in lanes)
