"""Tests for the pure extension logic: classification and k-shift."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.extension import (
    KShiftState,
    WalkStatus,
    classify_extension,
    kshift_next,
)

counts4 = st.tuples(*(st.integers(0, 20) for _ in range(4)))


class TestClassify:
    def test_single_viable_hi(self):
        status, base = classify_extension((0, 3, 0, 0), (0, 3, 0, 0))
        assert status is None and base == 1

    def test_no_viable_is_runout(self):
        status, base = classify_extension((0, 0, 0, 0), (1, 0, 0, 0))
        assert status == WalkStatus.RUNOUT and base == -1

    def test_total_fallback(self):
        """No hi-quality support, but enough total occurrences."""
        status, base = classify_extension((0, 0, 0, 0), (0, 0, 4, 0))
        assert status is None and base == 2

    def test_fork(self):
        status, base = classify_extension((3, 3, 0, 0), (3, 3, 0, 0))
        assert status == WalkStatus.FORK

    def test_dominance_resolves_fork(self):
        status, base = classify_extension((8, 2, 0, 0), (8, 2, 0, 0), dominance_ratio=2.0)
        assert status is None and base == 0

    def test_dominance_ratio_boundary(self):
        # exactly 2x with ratio 2.0: wins (>=) but only if strictly greater count
        status, _ = classify_extension((4, 2, 0, 0), (4, 2, 0, 0), dominance_ratio=2.0)
        assert status is None
        status2, _ = classify_extension((2, 2, 0, 0), (2, 2, 0, 0), dominance_ratio=1.0)
        assert status2 == WalkStatus.FORK  # equal counts never dominate

    def test_min_viable_threshold(self):
        status, _ = classify_extension((1, 0, 0, 0), (1, 0, 0, 0), min_viable=2)
        assert status == WalkStatus.RUNOUT
        status2, base = classify_extension((1, 0, 0, 0), (1, 0, 0, 0), min_viable=1)
        assert status2 is None and base == 0

    @given(counts4, counts4)
    def test_always_valid_output(self, hi, total):
        status, base = classify_extension(hi, total)
        if status is None:
            assert 0 <= base < 4
        else:
            assert status in (WalkStatus.RUNOUT, WalkStatus.FORK)
            assert base == -1

    @given(counts4)
    def test_hi_never_exceeding_total_is_not_required(self, hi):
        # classification must not crash however inconsistent the tallies
        classify_extension(hi, (0, 0, 0, 0))


class TestKShift:
    K = dict(k_min=13, k_max=63, k_step=8)

    def test_loop_terminates(self):
        s = kshift_next(KShiftState(k=21), WalkStatus.LOOP, **self.K)
        assert s.done

    def test_max_len_terminates(self):
        s = kshift_next(KShiftState(k=21), WalkStatus.MAX_LEN, **self.K)
        assert s.done

    def test_fork_upshifts(self):
        s = kshift_next(KShiftState(k=21), WalkStatus.FORK, **self.K)
        assert not s.done and s.k == 29 and s.shifted_up

    def test_runout_downshifts(self):
        s = kshift_next(KShiftState(k=21), WalkStatus.RUNOUT, **self.K)
        assert not s.done and s.k == 13 and s.shifted_down

    def test_fork_after_downshift_terminates(self):
        s = KShiftState(k=13, shifted_down=True)
        assert kshift_next(s, WalkStatus.FORK, **self.K).done

    def test_runout_after_upshift_terminates(self):
        s = KShiftState(k=29, shifted_up=True)
        assert kshift_next(s, WalkStatus.RUNOUT, **self.K).done

    def test_k_max_bound(self):
        s = KShiftState(k=63, shifted_up=True)
        assert kshift_next(s, WalkStatus.FORK, **self.K).done

    def test_k_min_bound(self):
        s = KShiftState(k=13)
        assert kshift_next(s, WalkStatus.RUNOUT, **self.K).done

    def test_repeated_forks_climb(self):
        s = KShiftState(k=21)
        ks = []
        while not s.done:
            ks.append(s.k)
            s = kshift_next(s, WalkStatus.FORK, **self.K)
        assert ks == [21, 29, 37, 45, 53, 61]

    @given(st.lists(st.sampled_from(list(WalkStatus)), min_size=1, max_size=30))
    def test_always_terminates(self, statuses):
        """Any status sequence drives the machine to done within bounds."""
        s = KShiftState(k=21)
        steps = 0
        for status in statuses * 5:
            if s.done:
                break
            s = kshift_next(s, status, **self.K)
            steps += 1
            assert 13 <= s.k <= 63
        assert steps <= 20
