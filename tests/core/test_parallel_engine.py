"""Driver-level contract of the parallel warp engine.

``GpuLocalAssembler(workers=N, engine="pool")`` must be *indistinguishable*
from the
sequential driver in everything but wall-clock: extensions, merged
counters, per-launch ``per_warp_inst`` tuples and modelled timing are all
bit-identical, and both match the CPU reference.  This pins the tentpole
guarantee that parallel execution is a pure implementation detail.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LocalAssemblyConfig
from repro.core.cpu_local_assembly import run_local_assembly_cpu
from repro.core.driver import GpuLocalAssembler
from repro.core.tasks import LEFT, RIGHT, ExtensionTask, TaskSet
from repro.gpusim.shmem import shared_memory_available
from repro.sequence.dna import encode, random_dna

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on this host"
)


def _tiling_task(genome, contig_end, read_len=70, stride=6, cid=0, side=RIGHT):
    reads, quals = [], []
    for i in range(0, len(genome) - read_len + 1, stride):
        reads.append(encode(genome[i : i + read_len]))
        quals.append(np.full(read_len, 40, dtype=np.uint8))
    return ExtensionTask(
        cid=cid, side=side, contig=encode(genome[:contig_end]),
        reads=tuple(reads), quals=tuple(quals),
    )


@pytest.fixture(scope="module")
def workload():
    """Enough multi-warp structure to exercise real sharding: 10 tasks
    spanning bins 1-3, both sides, plus an empty-read task."""
    rng = np.random.default_rng(2024)
    tasks = []
    for cid in range(4):
        tasks.append(_tiling_task(random_dna(320, rng), 120, cid=cid, stride=5))
    for cid in range(4, 7):
        side = LEFT if cid % 2 else RIGHT
        tasks.append(
            _tiling_task(random_dna(220, rng), 90, cid=cid, stride=30, side=side)
        )
    tasks.append(
        ExtensionTask(cid=7, side=RIGHT, contig=encode(random_dna(80, rng)),
                      reads=(), quals=())
    )
    for cid in (8, 9):
        tasks.append(_tiling_task(random_dna(280, rng), 100, cid=cid, stride=7))
    return TaskSet(tasks)


@pytest.fixture(scope="module")
def config():
    return LocalAssemblyConfig(k_init=21, max_walk_len=150)


def _assert_identical_reports(a, b):
    assert a.extensions == b.extensions
    assert a.n_batches == b.n_batches
    assert len(a.launches) == len(b.launches)
    for la, lb in zip(a.launches, b.launches):
        assert la.name == lb.name
        assert (la.bin, la.kernel) == (lb.bin, lb.kernel)
        assert la.n_warps == lb.n_warps
        assert la.per_warp_inst == lb.per_warp_inst
        assert la.counters == lb.counters
        assert la.timing == lb.timing
    assert a.merged_counters() == b.merged_counters()


class TestParallelDeterminism:
    @pytest.mark.parametrize("version", ["v2", "v1"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_bit_identical_to_sequential(self, workload, config, version, workers):
        seq = GpuLocalAssembler(
            config, kernel_version=version, workers=1, engine="sequential"
        ).run(workload)
        par = GpuLocalAssembler(
            config, kernel_version=version, workers=workers, engine="pool"
        ).run(workload)
        _assert_identical_reports(seq, par)

    def test_parallel_matches_cpu_reference(self, workload, config):
        cpu, _ = run_local_assembly_cpu(workload, config)
        par = GpuLocalAssembler(config, workers=2, engine="pool").run(workload)
        assert par.extensions == cpu

    def test_bin_attribution_uses_structured_fields(self, workload, config):
        report = GpuLocalAssembler(config, workers=2, engine="pool").run(workload)
        bins_seen = {l.bin for l in report.launches}
        assert bins_seen <= {"bin2", "bin3"}
        assert all(l.kernel == "v2" for l in report.launches)
        total = report.bin_kernel_time_s("bin2") + report.bin_kernel_time_s("bin3")
        assert total == pytest.approx(report.kernel_time_s)
        # an unknown bin attributes nothing, even as a substring of a name
        assert report.bin_kernel_time_s("bin") == 0.0

    def test_workers_validation(self, config):
        with pytest.raises(ValueError):
            GpuLocalAssembler(config, workers=0)
