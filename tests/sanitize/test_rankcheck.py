"""rankcheck tests: the vector-clock checker, the ledger, and the wiring.

Unit layer: hand-built event streams prove the happens-before relation
(barrier-separated accesses are ordered, same-generation conflicts are
not, replay order is irrelevant).  Integration layer: a clean 2-rank
``distributed_count_proc`` run reports zero races and zero leaked
segments, and the injected (value-neutral) cross-rank write is flagged
while the merged spectrum stays bit-identical.
"""

import json

import numpy as np
import pytest

from repro.sanitize.rankcheck import (
    RANK_SANITIZE_MODES,
    RankEvent,
    RankTracer,
    SegmentLedger,
    build_rank_report,
    check_happens_before,
)


def _w(seg, lo, hi):
    return RankEvent("w", seg, lo, hi)


def _r(seg, lo, hi):
    return RankEvent("r", seg, lo, hi)


_B = RankEvent("b")


class TestHappensBefore:
    def test_barrier_orders_write_then_read(self):
        races, n = check_happens_before(
            [
                [_w("out0", 0, 64), _B],
                [_B, _r("out0", 0, 64)],
            ]
        )
        assert races == []
        assert n == 2

    def test_same_generation_write_read_races(self):
        races, _ = check_happens_before(
            [
                [_w("out0", 0, 64)],
                [_r("out0", 0, 64)],
            ]
        )
        assert len(races) == 1
        (race,) = races
        assert race.seg == "out0"
        assert {race.rank_a, race.rank_b} == {0, 1}
        assert "no barrier between" in race.describe()

    def test_replay_order_is_irrelevant(self):
        """The hazard is flagged whichever side the replay visits first."""
        a = [[_w("s", 0, 8)], [_r("s", 0, 8)]]
        b = [[_r("s", 0, 8)], [_w("s", 0, 8)]]
        assert len(check_happens_before(a)[0]) == 1
        assert len(check_happens_before(b)[0]) == 1

    def test_read_read_overlap_is_clean(self):
        races, _ = check_happens_before(
            [[_r("s", 0, 64)], [_r("s", 0, 64)]]
        )
        assert races == []

    def test_disjoint_ranges_are_clean(self):
        races, _ = check_happens_before(
            [[_w("counts", 0, 16)], [_w("counts", 16, 32)]]
        )
        assert races == []

    def test_different_segments_are_clean(self):
        races, _ = check_happens_before(
            [[_w("out0", 0, 64)], [_w("out1", 0, 64)]]
        )
        assert races == []

    def test_same_rank_never_races_with_itself(self):
        races, _ = check_happens_before(
            [[_w("s", 0, 8), _r("s", 0, 8), _w("s", 0, 8)]]
        )
        assert races == []

    def test_post_barrier_write_into_put_epoch_races(self):
        """The injected-bug shape: rank 1 writes rank 0's outbox *after*
        the fence, racing rank 0's same-generation get."""
        races, _ = check_happens_before(
            [
                [_w("out0", 0, 64), _B, _r("out0", 0, 32)],
                [_w("out1", 0, 64), _B, _r("out0", 32, 64), _w("out0", 0, 64)],
            ]
        )
        assert len(races) == 1
        (race,) = races
        assert race.op_b == "w" or race.op_a == "w"
        assert race.seg == "out0"

    def test_two_fences_order_three_generations(self):
        races, _ = check_happens_before(
            [
                [_w("s", 0, 8), _B, _B, _r("s", 0, 8)],
                [_B, _w("s", 0, 8), _B],
            ]
        )
        # gen0 write (rank0) < fence < gen1 write (rank1) < fence < gen2
        # read (rank0): all ordered
        assert races == []

    def test_dedup_one_race_per_pair(self):
        """A single bad writer overlapping many reads reports once per
        (segment, rank pair, op pair), not once per access."""
        races, _ = check_happens_before(
            [
                [_r("s", 0, 8), _r("s", 8, 16), _r("s", 16, 24)],
                [_w("s", 0, 24)],
            ]
        )
        assert len(races) == 1


class TestTracer:
    def test_roundtrip_through_json(self, tmp_path):
        t = RankTracer(0)
        t.write("out0", 0, 64)
        t.barrier()
        t.read("counts", 8, 16)
        path = tmp_path / "rank0.json"
        t.dump(path)
        events = RankTracer.load(path)
        assert events == [
            RankEvent("w", "out0", 0, 64),
            RankEvent("b"),
            RankEvent("r", "counts", 8, 16),
        ]

    def test_empty_ranges_are_dropped(self):
        t = RankTracer(0)
        t.write("s", 8, 8)
        t.read("s", 9, 4)
        assert t.events == []

    def test_missing_file_loads_empty(self, tmp_path):
        assert RankTracer.load(tmp_path / "nope.json") == []


class TestSegmentLedger:
    def test_snapshot_filters_to_runtime_prefixes(self, tmp_path):
        (tmp_path / "psm_abc").write_bytes(b"")
        (tmp_path / "repro-tok-out0").write_bytes(b"")
        (tmp_path / "sem.mp-xyz").write_bytes(b"")  # barrier semaphores
        (tmp_path / "other-tenant").write_bytes(b"")
        snap = SegmentLedger(str(tmp_path)).snapshot()
        assert snap == {"psm_abc", "repro-tok-out0"}

    def test_leak_is_the_diff(self, tmp_path):
        ledger = SegmentLedger(str(tmp_path))
        before = ledger.snapshot()
        (tmp_path / "repro-tok-own1").write_bytes(b"")
        leaked = ledger.leaked(before, ledger.snapshot())
        assert leaked == ["repro-tok-own1"]

    def test_missing_dir_degrades_to_empty(self):
        ledger = SegmentLedger("/nonexistent-shm-dir")
        assert ledger.snapshot() == frozenset()


class TestReport:
    def test_schema_matches_device_sanitizers(self):
        races, n = check_happens_before(
            [[_w("out0", 0, 64)], [_r("out0", 0, 64)]]
        )
        report = build_rank_report(races, ["repro-tok-out1"], n)
        d = report.to_dict()
        assert set(d) == {
            "mode", "n_errors", "n_suppressed", "n_checked", "errors",
        }
        assert d["mode"] == "rankcheck"
        assert d["n_errors"] == 2
        kinds = {e["kind"] for e in d["errors"]}
        assert kinds == {"rank_race", "segment_leak"}
        race_err = next(e for e in d["errors"] if e["kind"] == "rank_race")
        assert race_err["checker"] == "rankcheck"
        assert race_err["lane"] == -1
        assert race_err["warp"] in (0, 1)  # the racing rank
        json.dumps(d)  # serialisable end to end

    def test_modes_constant(self):
        assert RANK_SANITIZE_MODES == ("off", "rankcheck")


# -- integration over the real exchange ---------------------------------------

from repro.gpusim.shmem import shared_memory_available  # noqa: E402


@pytest.fixture(scope="module")
def batch():
    from repro.sequence.community import arcticsynth_like, sample_paired_reads

    rng = np.random.default_rng(31)
    comm = arcticsynth_like(rng, n_genomes=2, genome_length=4000)
    return sample_paired_reads(comm, 400, rng)


@pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on this host"
)
class TestExchangeIntegration:
    def test_clean_two_rank_run_has_zero_races_and_leaks(self, batch):
        import repro.distributed.procrank as pr

        spec, _, report = pr.distributed_count_proc(
            batch, 21, 2, min_count=2, sanitize="rankcheck"
        )
        assert report.mode == "procrank"
        san = report.sanitizer
        assert san is not None
        assert san["n_errors"] == 0
        assert san["n_checked"] > 0
        assert san["errors"] == []
        assert "sanitizer" in report.to_dict()

    def test_injected_cross_rank_write_is_detected(self, batch):
        import repro.distributed.procrank as pr

        ref, _, _ = pr.distributed_count_proc(batch, 21, 2, min_count=2)
        pr._INJECT_RACE = True
        try:
            spec, _, report = pr.distributed_count_proc(
                batch, 21, 2, min_count=2, sanitize="rankcheck"
            )
        finally:
            pr._INJECT_RACE = False
        san = report.sanitizer
        assert san["n_errors"] >= 1
        kinds = {e["kind"] for e in san["errors"]}
        assert kinds == {"rank_race"}  # value-neutral: no leak, just the race
        race = san["errors"][0]
        assert race["details"]["segment"] == "out0"
        assert "w" in race["details"]["ops"]
        # the injection writes the bytes already present, so the result
        # is still bit-identical — the tracer, not the data, caught it
        assert np.array_equal(spec.words, ref.words)
        assert np.array_equal(spec.counts, ref.counts)

    def test_sanitize_off_attaches_no_report(self, batch):
        import repro.distributed.procrank as pr

        _, _, report = pr.distributed_count_proc(batch, 21, 2, min_count=2)
        assert report.sanitizer is None
        assert "sanitizer" not in report.to_dict()

    def test_unknown_mode_rejected(self, batch):
        import repro.distributed.procrank as pr

        with pytest.raises(ValueError, match="sanitize"):
            pr.distributed_count_proc(batch, 21, 2, sanitize="racecheck")

    def test_inproc_fallback_reports_trivially_clean(self, batch):
        from repro.distributed.comm import CommCostModel
        from repro.distributed.procrank import _distributed_count_inproc

        _, _, report = _distributed_count_inproc(
            batch, 21, 2, 2, 0, False, CommCostModel(), sanitize="rankcheck"
        )
        assert report.mode == "inproc"
        assert report.sanitizer is not None
        assert report.sanitizer["n_errors"] == 0


@pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on this host"
)
class TestPipelineWiring:
    def test_kmer_sanitize_threads_to_result(self, batch):
        from repro.pipeline import PipelineConfig, run_pipeline

        config = PipelineConfig(
            min_kmer_count=2, kmer_ranks=2, kmer_sanitize="rankcheck"
        )
        result = run_pipeline(batch, config)
        assert result.kmer_sanitizer is not None
        assert result.kmer_sanitizer["mode"] == "rankcheck"
        assert result.kmer_sanitizer["n_errors"] == 0

    def test_bad_mode_rejected_at_config(self):
        from repro.pipeline import PipelineConfig

        with pytest.raises(ValueError, match="kmer_sanitize"):
            PipelineConfig(kmer_sanitize="memcheck")
