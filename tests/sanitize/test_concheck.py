"""Concurrency-lint tests: the real tree is clean, seeded bugs are not.

Every rule is pinned from both sides: a fixture with exactly one
violation fires exactly that rule, and a clean counterpart fires
nothing — so rule drift (over- or under-matching) breaks a test, not a
CI gate on unrelated code.
"""

from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.sanitize import CONCURRENCY_RULES, conlint_files, conlint_paths

_PKG = Path(repro.__file__).parent


def _conlint_source(tmp_path, source, name="fixture_conc.py"):
    path = tmp_path / name
    path.write_text(source)
    return conlint_files([path])


# -- seeded-bug fixtures (one violation each) ---------------------------------

LEAKED_NAMED_SEGMENT = '''\
def publish_outbox(token, rank, rows):
    outbox = create_named_shared_array(
        f"repro-{token}-out{rank}", rows.shape, "u8"
    )
    outbox[...] = rows
'''

LEAKED_ANON_SEGMENT = '''\
def scratch_matrix(n):
    counts = create_shared_array((n, n), "i8")
    counts.fill(0)
    total = int(counts.sum())
    return total
'''

UNCLOSED_ATTACH = '''\
def peek(name, n):
    box = attach_shared_array(name, (n,), "u8")
    first = int(box[0])
    print(first)
'''

UNRELEASED_CLAIM = '''\
def grab(path):
    claim = ClaimFile(path)
    if not claim.acquire():
        return False
    do_work()
    claim.release()  # not in a finally: a crash in do_work() wedges it
    return True
'''

LOCK_ACROSS_FORK = '''\
def spawn_worker(self):
    with self._lock:
        proc = Process(target=run_worker)
        proc.start()
    return proc
'''

NONDET_RANK_WORKER = '''\
import random


def worker(seed):
    jitter = random.random()
    process(jitter)


def launch(ctx):
    p = ctx.Process(target=worker)
    p.start()
'''

BARRIER_NO_ABORT = '''\
def rank_body(barrier, rows):
    publish(rows)
    barrier.wait(timeout=30.0)
    consume(rows)
'''

BARRIER_NO_TIMEOUT = '''\
def rank_body(barrier, rows):
    try:
        publish(rows)
        barrier.wait()
        consume(rows)
    except Exception:
        barrier.abort()
        raise
'''

# -- clean counterparts -------------------------------------------------------

CLEAN_RANK_BODY = '''\
def rank_body(token, rank, barrier, rows):
    outbox = create_named_shared_array(
        _out_name(token, rank), rows.shape, "u8", token=token
    )
    try:
        outbox[...] = rows
        barrier.wait(timeout=30.0)
        box = None
        try:
            box = attach_shared_array(_out_name(token, 0), rows.shape, "u8")
            consume(box)
        finally:
            if box is not None:
                box.close()
    except Exception:
        barrier.abort()
        raise
'''

CLEAN_CLAIM = '''\
def with_claim(path):
    claim = ClaimFile(path)
    if not claim.acquire():
        return None
    try:
        return do_work()
    finally:
        claim.release()
'''

CLEAN_CLAIM_HANDOFF = '''\
def take(path):
    claim = ClaimFile(path)
    return claim if claim.acquire() else None
'''

CLEAN_ANON_SEGMENT = '''\
def scratch_matrix(n):
    counts = None
    try:
        counts = create_shared_array((n, n), "i8")
        return int(counts.sum())
    finally:
        if counts is not None:
            counts.unlink()
'''

CLEAN_REGISTERED_NAME = '''\
def launch(token, n_ranks, shapes):
    for r in range(n_ranks):
        register_launch_segment(token, _out_name(token, r))
    for r in range(n_ranks):
        seg = create_named_shared_array(_out_name(token, r), shapes[r], "u8")
        fill(seg)
'''


class TestSeededBugs:
    """Each seeded fixture fires exactly its own rule, once."""

    @pytest.mark.parametrize(
        "source, rule, needle",
        [
            (LEAKED_NAMED_SEGMENT, "segment-lifecycle", "register_launch_segment"),
            (LEAKED_ANON_SEGMENT, "segment-lifecycle", "try/finally"),
            (UNCLOSED_ATTACH, "segment-lifecycle", "close"),
            (UNRELEASED_CLAIM, "claim-lifecycle", "finally"),
            (LOCK_ACROSS_FORK, "lock-across-fork", "deadlock"),
            (NONDET_RANK_WORKER, "rank-nondeterminism", "random"),
            (BARRIER_NO_ABORT, "barrier-abort", "abort"),
            (BARRIER_NO_TIMEOUT, "barrier-abort", "timeout"),
        ],
        ids=[
            "leaked-named-segment",
            "leaked-anon-segment",
            "unclosed-attach",
            "unreleased-claim",
            "lock-across-fork",
            "nondet-rank-worker",
            "barrier-no-abort",
            "barrier-no-timeout",
        ],
    )
    def test_fixture_fires_exactly_its_rule(self, tmp_path, source, rule, needle):
        findings = _conlint_source(tmp_path, source)
        assert len(findings) == 1, [str(f) for f in findings]
        (f,) = findings
        assert f.rule == rule
        assert needle in f.message

    def test_rules_are_the_documented_set(self):
        assert set(CONCURRENCY_RULES) == {
            "segment-lifecycle",
            "claim-lifecycle",
            "lock-across-fork",
            "rank-nondeterminism",
            "barrier-abort",
        }


class TestCleanPatterns:
    @pytest.mark.parametrize(
        "source",
        [
            CLEAN_RANK_BODY,
            CLEAN_CLAIM,
            CLEAN_CLAIM_HANDOFF,
            CLEAN_ANON_SEGMENT,
            CLEAN_REGISTERED_NAME,
        ],
        ids=[
            "rank-body",
            "claim-finally",
            "claim-handoff",
            "anon-finally",
            "registered-name",
        ],
    )
    def test_clean_pattern_has_no_findings(self, tmp_path, source):
        assert _conlint_source(tmp_path, source) == []


class TestRealTree:
    def test_concurrency_surface_is_clean(self):
        paths = [
            _PKG / "distributed",
            _PKG / "gpusim" / "shmem.py",
            _PKG / "locking.py",
            _PKG / "service",
        ]
        assert conlint_paths(paths) == []

    def test_whole_src_tree_is_clean(self):
        assert conlint_paths([_PKG]) == []


class TestCli:
    def test_lint_concurrency_default_exits_zero(self, capsys):
        assert main(["lint", "--concurrency"]) == 0
        assert "concheck" in capsys.readouterr().out

    def test_lint_concurrency_src_exits_zero(self, capsys):
        assert main(["lint", "--concurrency", str(_PKG)]) == 0

    def test_seeded_bug_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad_claim.py"
        bad.write_text(UNRELEASED_CLAIM)
        assert main(["lint", "--concurrency", str(bad)]) == 1
        captured = capsys.readouterr()
        assert "claim-lifecycle" in captured.out
        assert "1 lint finding" in captured.err

    def test_json_report_matches_sanitizer_schema(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad_barrier.py"
        bad.write_text(BARRIER_NO_ABORT)
        assert main(["lint", "--concurrency", "--json", str(bad)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {
            "mode", "n_errors", "n_suppressed", "n_checked", "errors",
        }
        assert report["mode"] == "concheck"
        assert report["n_errors"] == 1
        assert report["n_checked"] == 1  # one file linted
        (err,) = report["errors"]
        assert err["checker"] == "concheck"
        assert err["kind"] == "barrier-abort"
        assert err["kernel"].endswith("bad_barrier.py")
        assert err["details"]["line"] == err["warp"]

    def test_kernel_lint_json_uses_same_schema(self, capsys):
        import json

        assert main(["lint", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["mode"] == "lint"
        assert report["n_errors"] == 0
        assert report["errors"] == []
