"""Dynamic-checker tests: each seeded kernel defect fires exactly its checker.

Fixture kernels mirror NVIDIA compute-sanitizer's test style: each one
contains exactly one deliberate bug (an out-of-bounds store, a lane race
on a non-atomic store, a read of never-written memory, a use after free)
and the matching checker must report it — naming the kernel, bin, warp,
lane and device address — while the other checkers stay silent.
"""

import json

import numpy as np
import pytest

from repro.gpusim.kernel import GpuContext
from repro.sanitize import MAX_ERRORS, SANITIZE_MODES, Sanitizer


# --- fixture kernels (one seeded defect each) -------------------------------


def _oob_store_kernel(warp, warp_id, darr):
    idx = np.arange(32, dtype=np.int64)
    idx[31] = darr.data.size + 8  # seeded bug: lane 31 runs off the end
    warp.global_store(darr, idx, np.full(32, 1, dtype=np.int64))


def _lane_race_kernel(warp, warp_id, darr):
    idx = np.arange(32, dtype=np.int64)
    idx[1] = 0  # seeded bug: lanes 0 and 1 collide, store is not atomic
    warp.global_store(darr, idx, np.arange(32, dtype=np.int64))


def _cross_warp_race_kernel(warp, warp_id, darr):
    # seeded bug: every warp stores to element 0 with no atomicity
    with warp.single_lane(0):
        warp.global_store(
            darr, np.zeros(32, dtype=np.int64), np.full(32, warp_id, dtype=np.int64)
        )


def _uninit_load_kernel(warp, warp_id, darr):
    # seeded bug: darr was allocated but never written / transferred
    warp.global_load(darr, np.arange(32, dtype=np.int64))


def _use_after_free_kernel(warp, warp_id, darr):
    warp.global_load(darr, np.zeros(32, dtype=np.int64))


def _clean_kernel(warp, warp_id, darr):
    idx = np.arange(32, dtype=np.int64)
    vals = warp.global_load(darr, idx)
    warp.sync()
    warp.global_store(darr, idx, vals + 1)


@pytest.fixture
def ctx():
    context = GpuContext(sanitize="full")
    yield context
    context.close()


def _launch(ctx, kernel, n_warps=1, *, name="fixture", bin_name="bin2", size=64):
    darr = ctx.to_device(np.zeros(size, dtype=np.int64))
    ctx.launch(name, kernel, n_warps, darr, bin_name=bin_name)
    return ctx.sanitizer_report()


class TestMemcheck:
    def test_oob_store_reported_with_coordinates(self, ctx):
        darr = ctx.to_device(np.zeros(64, dtype=np.int64))
        ctx.launch("oob_fixture", _oob_store_kernel, 1, darr, bin_name="bin3")
        report = ctx.sanitizer_report()
        assert not report.clean
        assert {e.checker for e in report.errors} == {"memcheck"}
        (err,) = report.errors
        assert err.kind == "oob_store"
        assert err.kernel == "oob_fixture"
        assert err.bin == "bin3"
        assert err.warp == 0
        assert err.lane == 31
        assert err.address == darr.base_addr + (darr.data.size + 8) * darr.itemsize

    def test_oob_lane_is_suppressed_not_written(self, ctx):
        host = np.zeros(64, dtype=np.int64)
        darr = ctx.to_device(host)
        ctx.launch("oob_fixture", _oob_store_kernel, 1, darr)
        # lanes 0..30 stored 1; the out-of-bounds lane wrote nothing
        out = ctx.from_device(darr)
        assert out[:31].tolist() == [1] * 31
        assert out[31] == 0

    def test_use_after_free_reported(self, ctx):
        darr = ctx.to_device(np.zeros(16, dtype=np.int64))
        ctx.allocator.free(darr)
        ctx.launch("uaf_fixture", _use_after_free_kernel, 1, darr)
        report = ctx.sanitizer_report()
        (err,) = report.errors
        assert err.checker == "memcheck"
        assert err.kind == "use_after_free"
        assert err.address == darr.base_addr

    def test_use_after_reset_reported(self, ctx):
        darr = ctx.to_device(np.zeros(16, dtype=np.int64))
        ctx.allocator.reset()
        ctx.launch("uar_fixture", _use_after_free_kernel, 1, darr)
        assert any(
            e.kind == "use_after_free" for e in ctx.sanitizer_report().errors
        )


class TestRacecheck:
    def test_lane_race_on_non_atomic_store(self, ctx):
        report = _launch(ctx, _lane_race_kernel, name="race_fixture")
        assert {e.checker for e in report.errors} == {"racecheck"}
        (err,) = report.errors
        assert err.kind == "race"
        assert err.kernel == "race_fixture"
        assert err.warp == 0
        assert err.lane == 1
        assert err.details["other_lane"] == 0
        assert "non-atomic" in err.message

    def test_cross_warp_race(self, ctx):
        report = _launch(ctx, _cross_warp_race_kernel, n_warps=2, name="xwarp")
        assert not report.clean
        (err,) = report.by_checker("racecheck")
        assert err.warp == 1
        assert err.details["other_warp"] == 0
        assert "cross-warp" in err.message

    def test_sync_separates_accesses(self, ctx):
        # same addresses touched again after warp.sync(): no hazard
        report = _launch(ctx, _clean_kernel, name="clean")
        assert report.clean, [str(e) for e in report.errors]


class TestInitcheck:
    def test_uninitialized_read_reported(self, ctx):
        darr = ctx.alloc(64, np.int64)  # never written, never marked
        ctx.launch("uninit_fixture", _uninit_load_kernel, 1, darr)
        report = ctx.sanitizer_report()
        assert {e.checker for e in report.errors} == {"initcheck"}
        err = report.errors[0]
        assert err.kind == "uninit_load"
        assert err.kernel == "uninit_fixture"
        assert err.warp == 0
        assert err.lane == 0
        assert err.address == darr.base_addr

    def test_written_then_read_is_clean(self, ctx):
        report = _launch(ctx, _clean_kernel, name="clean")
        assert report.clean

    def test_mark_initialized_silences(self, ctx):
        darr = ctx.alloc(64, np.int64)
        ctx.mark_initialized(darr)  # the cudaMemset analogue
        ctx.launch("memset_fixture", _uninit_load_kernel, 1, darr)
        assert ctx.sanitizer_report().clean


class TestModes:
    def test_single_mode_only_runs_its_checker(self):
        # the OOB fixture under racecheck-only: suppression is memcheck's
        # job, so strict validation raises instead
        ctx = GpuContext(sanitize="racecheck")
        try:
            darr = ctx.to_device(np.zeros(64, dtype=np.int64))
            with pytest.raises(IndexError):
                ctx.launch("oob", _oob_store_kernel, 1, darr)
        finally:
            ctx.close()

    def test_off_mode_has_no_report(self):
        ctx = GpuContext()
        try:
            assert ctx.sanitizer_report() is None
        finally:
            ctx.close()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="sanitize"):
            GpuContext(sanitize="bogus")

    def test_mode_list_is_stable(self):
        assert SANITIZE_MODES == ("off", "memcheck", "racecheck", "initcheck", "full")


class TestReport:
    def test_serialization_roundtrip(self, ctx):
        _launch(ctx, _lane_race_kernel, name="race_fixture")
        report = ctx.sanitizer_report()
        payload = json.loads(report.to_json())
        assert payload["mode"] == "full"
        assert payload["n_errors"] == 1
        (err,) = payload["errors"]
        assert err["checker"] == "racecheck"
        assert err["kernel"] == "race_fixture"
        assert isinstance(err["address"], int)

    def test_summary_mentions_counts(self, ctx):
        _launch(ctx, _lane_race_kernel)
        text = ctx.sanitizer_report().summary()
        assert "1 error" in text

    def test_error_cap(self):
        san = Sanitizer("memcheck")
        san.begin_launch("k", "bin2", 1)
        darr_like = type(
            "D",
            (),
            {
                "base_addr": 0,
                "itemsize": 8,
                "freed": False,
                "data": np.zeros(4, dtype=np.int64),
            },
        )()
        for _ in range(MAX_ERRORS + 50):
            san.access(
                darr_like,
                np.array([99], dtype=np.int64),
                0,
                np.array([0]),
                write=True,
            )
        report = san.report()
        assert len(report.errors) == MAX_ERRORS
        assert report.n_suppressed == 50
        assert report.n_errors == MAX_ERRORS + 50
