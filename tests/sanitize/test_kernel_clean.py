"""The real extension kernels are sanitizer-clean on every engine.

This is the acceptance gate for the kernels themselves: running the
unmodified v2 kernel (and the v1 baseline) under ``--sanitize full``
reports zero errors on the sequential, pool and batched engines, and
turning the sanitizer on does not change a single extended base.
"""

import numpy as np
import pytest

from repro.core.config import LocalAssemblyConfig
from repro.core.driver import GpuLocalAssembler
from repro.core.tasks import ExtensionTask, TaskSet


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(7)
    genome = rng.integers(0, 4, size=320, dtype=np.uint8)
    tasks = []
    for i in range(12):
        start = (i * 13) % 120
        contig = genome[start : start + 120].copy()
        reads, quals = [], []
        for off in range(0, 180, 5):
            s = start + 60 + off
            if s + 70 > genome.size:
                break
            reads.append(genome[s : s + 70].copy())
            quals.append(np.full(70, 40, dtype=np.uint8))
        tasks.append(
            ExtensionTask(cid=i, side=1, contig=contig, reads=reads, quals=quals)
        )
    return TaskSet(tasks)


@pytest.fixture(scope="module")
def cfg():
    return LocalAssemblyConfig(k_init=21, max_walk_len=150)


@pytest.fixture(scope="module")
def baseline(workload, cfg):
    """Unsanitized sequential v2 run — the bit-identity reference."""
    return GpuLocalAssembler(config=cfg, engine="sequential").run(workload)


@pytest.mark.parametrize(
    "engine,workers",
    [("sequential", 1), ("pool", 2), ("batched", 1)],
)
def test_v2_sanitizer_clean_on_engine(workload, cfg, baseline, engine, workers):
    asm = GpuLocalAssembler(
        config=cfg, engine=engine, workers=workers, sanitize="full"
    )
    report = asm.run(workload)
    san = report.sanitizer
    assert san is not None
    assert san.mode == "full"
    assert san.clean, san.summary()
    assert san.n_checked > 0
    # enabling the checkers must not perturb the assembly
    assert report.extensions == baseline.extensions


def test_v1_sanitizer_clean(workload, cfg):
    asm = GpuLocalAssembler(config=cfg, kernel_version="v1", sanitize="full")
    report = asm.run(workload)
    assert report.sanitizer.clean, report.sanitizer.summary()


def test_unsanitized_report_has_no_sanitizer(baseline):
    assert baseline.sanitizer is None


def test_sanitize_knob_threads_through_pipeline():
    from repro.pipeline import PipelineConfig

    cfg = PipelineConfig(local_assembly_sanitize="full")
    assert cfg.local_assembly_sanitize == "full"
    with pytest.raises(ValueError, match="local_assembly_sanitize"):
        PipelineConfig(local_assembly_sanitize="everything")


def test_driver_rejects_bad_mode(cfg):
    with pytest.raises(ValueError, match="sanitize"):
        GpuLocalAssembler(config=cfg, sanitize="all")
