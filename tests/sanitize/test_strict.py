"""Always-on access validation + allocator lifecycle errors (no sanitizer).

Even with every checker off, the simulator refuses the accesses real CUDA
would corrupt silently: negative / past-the-end indices raise IndexError
(instead of NumPy's wraparound semantics) and touching freed memory
raises DeviceFreeError.  The allocator itself rejects double frees and
frees of arrays it does not own.
"""

import numpy as np
import pytest

from repro.gpusim import DeviceFreeError
from repro.gpusim.batched import BatchCounters, WarpBatch
from repro.gpusim.counters import KernelCounters
from repro.gpusim.memory import DeviceAllocator
from repro.gpusim.warp import Warp


@pytest.fixture
def alloc():
    return DeviceAllocator(1 << 20)


@pytest.fixture
def warp():
    return Warp(KernelCounters())


class TestStrictIndexValidation:
    def test_negative_index_load_raises(self, alloc, warp):
        darr = alloc.to_device(np.arange(16, dtype=np.int64))
        idx = np.zeros(32, dtype=np.int64)
        idx[3] = -2
        with pytest.raises(IndexError, match="-2"):
            warp.global_load(darr, idx)

    def test_past_end_index_store_raises(self, alloc, warp):
        darr = alloc.to_device(np.arange(16, dtype=np.int64))
        idx = np.zeros(32, dtype=np.int64)
        idx[7] = 16  # == len(darr): one past the last element
        with pytest.raises(IndexError, match="16"):
            warp.global_store(darr, idx, np.ones(32, dtype=np.int64))

    def test_span_overrun_raises(self, alloc, warp):
        darr = alloc.to_device(np.arange(16, dtype=np.int64))
        with pytest.raises(IndexError):
            warp.global_load_span(darr, 8, 16)

    def test_inactive_lanes_are_not_validated(self, alloc, warp):
        # predicated-off lanes never issue their access (SIMT semantics):
        # a garbage index in a masked lane must not raise
        darr = alloc.to_device(np.arange(16, dtype=np.int64))
        idx = np.full(32, 9999, dtype=np.int64)
        idx[:4] = np.arange(4)
        with warp.where(np.arange(32) < 4):
            vals = warp.global_load(darr, idx)
        assert vals[:4].tolist() == [0, 1, 2, 3]

    def test_valid_access_untouched(self, alloc, warp):
        darr = alloc.to_device(np.arange(32, dtype=np.int64))
        vals = warp.global_load(darr, np.arange(32, dtype=np.int64))
        assert vals.tolist() == list(range(32))

    def test_batched_oob_raises(self, alloc):
        darr = alloc.to_device(np.arange(16, dtype=np.int64))
        wb = WarpBatch(BatchCounters(2))
        idx = np.zeros((2, 32), dtype=np.int64)
        idx[1, 5] = 999
        mask = np.ones((2, 32), dtype=bool)
        with pytest.raises(IndexError, match="999"):
            wb.load_gather(darr, idx, mask, np.array([0, 1]))


class TestFreedAccess:
    def test_load_after_free_raises(self, alloc, warp):
        darr = alloc.to_device(np.arange(16, dtype=np.int64))
        alloc.free(darr)
        with pytest.raises(DeviceFreeError):
            warp.global_load(darr, np.zeros(32, dtype=np.int64))

    def test_load_after_reset_raises(self, alloc, warp):
        darr = alloc.to_device(np.arange(16, dtype=np.int64))
        alloc.reset()
        with pytest.raises(DeviceFreeError):
            warp.global_load(darr, np.zeros(32, dtype=np.int64))

    def test_span_after_free_raises(self, alloc, warp):
        darr = alloc.to_device(np.arange(16, dtype=np.int64))
        alloc.free(darr)
        with pytest.raises(DeviceFreeError):
            warp.global_store_span(darr, 0, 4, np.zeros(4, dtype=np.int64))


class TestAllocatorLifecycle:
    def test_double_free_raises(self, alloc):
        darr = alloc.alloc(16, np.int64)
        alloc.free(darr)
        with pytest.raises(DeviceFreeError, match="double free"):
            alloc.free(darr)

    def test_unowned_free_raises(self, alloc):
        other = DeviceAllocator(1 << 20)
        foreign = other.alloc(16, np.int64)
        with pytest.raises(DeviceFreeError, match="does not own"):
            alloc.free(foreign)

    def test_free_after_reset_raises(self, alloc):
        darr = alloc.alloc(16, np.int64)
        alloc.reset()
        with pytest.raises(DeviceFreeError):
            alloc.free(darr)

    def test_normal_free_then_fresh_alloc_ok(self, alloc):
        darr = alloc.alloc(16, np.int64)
        alloc.free(darr)
        again = alloc.alloc(16, np.int64)
        assert not again.freed
