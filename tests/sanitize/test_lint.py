"""Static kernel-lint tests: the real tree is clean, seeded defects are not."""

from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.sanitize import lint_files, lint_paths

_PKG = Path(repro.__file__).parent


# -- seeded-defect fixtures ---------------------------------------------------

TWIN_ARG_MISMATCH = '''\
def my_kernel(warp, warp_id, table, out):
    warp.int_op()


def my_kernel_batched(wb, rows, table, result):
    wb.int_op(1, rows, 32)


register_batched(my_kernel, my_kernel_batched)
'''

TWIN_COUNTER_MISMATCH = '''\
def walk_kernel(warp, warp_id, buf):
    warp.global_load(buf, 0)


def walk_kernel_batched(wb, rows, buf):
    wb.int_op(1, rows, 32)


register_batched(walk_kernel, walk_kernel_batched)
'''

BANNED_CALL = '''\
import time


def timed_kernel(warp, warp_id):
    t = time.time()
    warp.int_op()
'''

ATOMIC_DISCARD = '''\
def count_kernel(warp, warp_id, buf, idx):
    warp.atomic_add(buf, idx, 1)
'''

CLEAN_KERNEL = '''\
def good_kernel(warp, warp_id, buf, idx):
    _ = warp.atomic_add(buf, idx, 1)
    old = warp.atomic_cas(buf, idx, 0, 1)
    warp.int_op()
    return old


def good_kernel_batched(wb, rows, buf, idx):
    _ = wb.atomic_add(buf, idx, 1, 32, rows)
    wb.int_op(1, rows, 32)


register_batched(good_kernel, good_kernel_batched)
'''


def _lint_source(tmp_path, source, name="fixture_kernel.py"):
    path = tmp_path / name
    path.write_text(source)
    return lint_files([path])


class TestTwinParity:
    def test_argument_mismatch_flagged(self, tmp_path):
        findings = _lint_source(tmp_path, TWIN_ARG_MISMATCH)
        (f,) = findings
        assert f.rule == "twin-parity"
        assert "launch arguments" in f.message
        assert "result" in f.message

    def test_counter_class_mismatch_flagged(self, tmp_path):
        findings = _lint_source(tmp_path, TWIN_COUNTER_MISMATCH)
        (f,) = findings
        assert f.rule == "twin-parity"
        assert "counter classes" in f.message
        assert "global_ld" in f.message

    def test_matching_twins_clean(self, tmp_path):
        assert _lint_source(tmp_path, CLEAN_KERNEL) == []


class TestBannedCalls:
    def test_time_call_in_kernel_flagged(self, tmp_path):
        findings = _lint_source(tmp_path, BANNED_CALL)
        (f,) = findings
        assert f.rule == "banned-call"
        assert "time" in f.message

    def test_time_outside_kernel_is_fine(self, tmp_path):
        source = "import time\n\n\ndef host_helper(batch):\n    return time.time()\n"
        assert _lint_source(tmp_path, source) == []


class TestAtomicDiscard:
    def test_bare_atomic_flagged(self, tmp_path):
        findings = _lint_source(tmp_path, ATOMIC_DISCARD)
        (f,) = findings
        assert f.rule == "atomic-discard"
        assert "atomic_add" in f.message


class TestRealTree:
    def test_kernel_tree_is_clean(self):
        assert lint_paths([_PKG / "core", _PKG / "gpusim"]) == []

    def test_finding_str_has_location(self, tmp_path):
        (f,) = _lint_source(tmp_path, ATOMIC_DISCARD)
        text = str(f)
        assert "fixture_kernel.py" in text
        assert "[atomic-discard]" in text


class TestCli:
    def test_lint_default_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_seeded_violation_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad_twins.py"
        bad.write_text(TWIN_ARG_MISMATCH)
        assert main(["lint", str(bad)]) == 1
        captured = capsys.readouterr()
        assert "twin-parity" in captured.out
        assert "1 lint finding" in captured.err

    def test_lint_json_output(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text(ATOMIC_DISCARD)
        assert main(["lint", str(bad), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "lint"
        assert payload["n_errors"] == 1
        (err,) = payload["errors"]
        assert err["kind"] == "atomic-discard"
        assert err["details"]["rule"] == "atomic-discard"
        assert err["warp"] == 2  # the finding's line
