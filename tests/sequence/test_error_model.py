"""Tests for the Illumina error model."""

import numpy as np
import pytest

from repro.sequence.error_model import PERFECT, IlluminaErrorModel


class TestValidation:
    def test_bad_rates(self):
        with pytest.raises(ValueError):
            IlluminaErrorModel(rate_start=-0.1)
        with pytest.raises(ValueError):
            IlluminaErrorModel(rate_end=1.0)

    def test_rates_ramp(self):
        m = IlluminaErrorModel(rate_start=0.001, rate_end=0.01)
        r = m.error_rates(100)
        assert r[0] == pytest.approx(0.001)
        assert r[-1] == pytest.approx(0.01)
        assert np.all(np.diff(r) >= 0)

    def test_single_base_read(self):
        assert IlluminaErrorModel().error_rates(1).shape == (1,)


class TestApply:
    def test_perfect_model_unchanged(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 4, size=(10, 50)).astype(np.uint8)
        out, quals, err = PERFECT.apply(codes, rng)
        assert np.array_equal(out, codes)
        assert not err.any()
        assert quals.min() >= 2 and quals.max() <= 41

    def test_errors_are_substitutions(self):
        rng = np.random.default_rng(1)
        m = IlluminaErrorModel(rate_start=0.5, rate_end=0.5)
        codes = np.zeros((20, 100), dtype=np.uint8)  # all A
        out, _, err = m.apply(codes, rng)
        assert err.mean() == pytest.approx(0.5, abs=0.05)
        # every flagged position changed to a different base
        assert np.all(out[err] != 0)
        assert np.all(out[err] < 4)
        # unflagged positions unchanged
        assert np.all(out[~err] == 0)

    def test_error_rate_statistics(self):
        rng = np.random.default_rng(2)
        m = IlluminaErrorModel(rate_start=0.01, rate_end=0.01, qual_jitter=0)
        codes = np.zeros((200, 150), dtype=np.uint8)
        _, quals, err = m.apply(codes, rng)
        assert err.mean() == pytest.approx(0.01, rel=0.2)
        # q = -10 log10(0.01) = 20 with no jitter
        assert np.all(quals == 20)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            PERFECT.apply(np.zeros(10, dtype=np.uint8), np.random.default_rng(0))

    def test_expected_error_free_fraction(self):
        m = IlluminaErrorModel(rate_start=0.0, rate_end=0.0)
        assert m.expected_error_free_fraction(100) == 1.0
        m2 = IlluminaErrorModel(rate_start=0.01, rate_end=0.01)
        assert m2.expected_error_free_fraction(100) == pytest.approx(0.99**100, rel=1e-6)
