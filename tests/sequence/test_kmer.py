"""Tests for k-mer extraction and 2-bit packing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sequence.dna import encode, revcomp
from repro.sequence.kmer import (
    canonical,
    count_distinct_kmers,
    iter_kmers,
    kmer_window,
    kmers_of,
    pack_kmer,
    pack_kmers,
    unpack_kmer,
    valid_kmer_mask,
    words_per_kmer,
)

dna = st.text(alphabet="ACGT", min_size=1, max_size=150)


class TestExtraction:
    def test_kmers_of(self):
        assert kmers_of("ACGTA", 3) == ["ACG", "CGT", "GTA"]

    def test_kmers_skip_n(self):
        assert kmers_of("ACNGT", 2) == ["AC", "GT"]

    def test_short_seq(self):
        assert kmers_of("AC", 3) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            list(iter_kmers("ACGT", 0))

    def test_canonical(self):
        assert canonical("AAC") == "AAC"  # revcomp is GTT
        assert canonical("GTT") == "AAC"

    @given(dna.filter(lambda s: len(s) >= 5))
    def test_canonical_strand_invariant(self, s):
        k = 5
        fwd = {canonical(m) for m in kmers_of(s, k)}
        rev = {canonical(m) for m in kmers_of(revcomp(s), k)}
        assert fwd == rev

    def test_count_distinct(self):
        assert count_distinct_kmers("AAAA", 2) == 1
        assert count_distinct_kmers("ACGT", 2, canonicalise=True) == 2  # AC~GT, CG~CG


class TestWindows:
    def test_window_shape_and_view(self):
        codes = encode("ACGTACG")
        w = kmer_window(codes, 3)
        assert w.shape == (5, 3)
        assert w[0].tolist() == [0, 1, 2]

    def test_window_too_short(self):
        assert kmer_window(encode("AC"), 3).shape == (0, 3)

    def test_valid_mask(self):
        codes = encode("ACNGT")
        mask = valid_kmer_mask(codes, 2)
        assert mask.tolist() == [True, False, False, True]

    def test_valid_mask_all_valid(self):
        assert valid_kmer_mask(encode("ACGT"), 2).all()

    def test_valid_mask_empty(self):
        assert valid_kmer_mask(encode("A"), 3).size == 0


class TestPacking:
    def test_words_per_kmer(self):
        assert words_per_kmer(21) == 1
        assert words_per_kmer(32) == 1
        assert words_per_kmer(33) == 2
        assert words_per_kmer(99) == 4

    @pytest.mark.parametrize("k", [1, 5, 21, 31, 32, 33, 55, 64, 77, 99])
    def test_roundtrip(self, k):
        rng = np.random.default_rng(k)
        from repro.sequence.dna import random_dna

        s = random_dna(k, rng)
        assert unpack_kmer(pack_kmer(s), k) == s

    @given(dna.filter(lambda s: len(s) >= 21))
    def test_pack_kmers_matches_scalar(self, s):
        k = 21
        words, valid = pack_kmers(encode(s), k)
        assert valid.all()
        for i, km in enumerate(kmers_of(s, k)):
            assert np.array_equal(words[i], pack_kmer(km))

    def test_pack_rejects_n(self):
        with pytest.raises(ValueError):
            pack_kmer("ACNGT")

    def test_pack_preserves_order(self):
        """Packed words sort like the underlying strings (word-major)."""
        kmers = sorted({"ACGTA", "AAAAA", "TTTTT", "CGTAC", "GGGGG"})
        packed = [tuple(pack_kmer(m).tolist()) for m in kmers]
        assert packed == sorted(packed)

    def test_pack_kmers_masks_n_windows(self):
        codes = encode("ACGTNACGT")
        _, valid = pack_kmers(codes, 3)
        # windows overlapping index 4 (N) are invalid
        assert valid.tolist() == [True, True, False, False, False, True, True]
