"""FASTQ/FASTA I/O tests, including gzip and malformed inputs."""

import pytest

from repro.sequence.fastq import (
    FastqFormatError,
    load_read_batch,
    parse_fastq,
    read_fasta,
    read_fastq,
    save_read_batch,
    write_fasta,
    write_fastq,
)
from repro.sequence.read import Read, ReadBatch


@pytest.fixture
def reads():
    return [
        Read("r1/1", "ACGTACGT", (30,) * 8),
        Read("r1/2", "TTGGCCAA", (20,) * 8),
    ]


class TestFastq:
    def test_roundtrip(self, tmp_path, reads):
        p = tmp_path / "x.fastq"
        assert write_fastq(p, reads) == 2
        back = list(read_fastq(p))
        assert back == reads

    def test_gzip_roundtrip(self, tmp_path, reads):
        p = tmp_path / "x.fastq.gz"
        write_fastq(p, reads)
        assert list(read_fastq(p)) == reads

    def test_batch_roundtrip(self, tmp_path, reads):
        p = tmp_path / "b.fastq"
        save_read_batch(p, ReadBatch.from_reads(reads, paired=True))
        b = load_read_batch(p)
        assert b.paired and len(b) == 2 and b.seq(0) == "ACGTACGT"

    def test_header_name_truncated_at_space(self):
        rec = "@name extra stuff\nACGT\n+\nIIII\n"
        (r,) = list(parse_fastq(rec.splitlines(True)))
        assert r.name == "name"

    def test_lowercase_uppercased(self):
        rec = "@n\nacgt\n+\nIIII\n"
        (r,) = list(parse_fastq(rec.splitlines(True)))
        assert r.seq == "ACGT"

    def test_bad_header(self):
        with pytest.raises(FastqFormatError, match="header"):
            list(parse_fastq("ACGT\nACGT\n+\nIIII\n".splitlines(True)))

    def test_truncated_record(self):
        with pytest.raises(FastqFormatError, match="truncated"):
            list(parse_fastq("@n\nACGT\n".splitlines(True)))

    def test_missing_plus(self):
        with pytest.raises(FastqFormatError, match=r"\+"):
            list(parse_fastq("@n\nACGT\nIIII\nIIII\n".splitlines(True)))

    def test_qual_length_mismatch(self):
        with pytest.raises(FastqFormatError, match="length"):
            list(parse_fastq("@n\nACGT\n+\nII\n".splitlines(True)))

    def test_trailing_blank_lines_ok(self):
        recs = list(parse_fastq("@n\nACGT\n+\nIIII\n\n\n".splitlines(True)))
        assert len(recs) == 1


class TestFasta:
    def test_roundtrip_with_wrapping(self, tmp_path):
        p = tmp_path / "x.fasta"
        seq = "ACGT" * 50
        write_fasta(p, [("g1", seq), ("g2", "TTTT")], width=13)
        back = list(read_fasta(p))
        assert back == [("g1", seq), ("g2", "TTTT")]

    def test_data_before_header(self, tmp_path):
        p = tmp_path / "bad.fasta"
        p.write_text("ACGT\n>x\nACGT\n")
        with pytest.raises(FastqFormatError):
            list(read_fasta(p))

    def test_gz(self, tmp_path):
        p = tmp_path / "x.fasta.gz"
        write_fasta(p, [("g", "ACGT")])
        assert list(read_fasta(p)) == [("g", "ACGT")]
