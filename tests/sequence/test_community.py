"""Tests for genome generation and community read sampling."""

import numpy as np
import pytest

from repro.sequence.community import (
    Community,
    CommunityDesign,
    arcticsynth_like,
    sample_paired_reads,
    wa_like,
)
from repro.sequence.dna import revcomp
from repro.sequence.error_model import PERFECT
from repro.sequence.genomes import GenomeSpec, generate_genome, make_shared_library


class TestGenomes:
    def test_length_and_alphabet(self, rng):
        g = generate_genome("g", GenomeSpec(length=5000), rng)
        assert len(g) == 5000
        assert set(g.seq) <= set("ACGT")

    def test_repeats_planted(self, rng):
        spec = GenomeSpec(length=20000, repeat_fraction=0.1, repeat_length=300)
        g = generate_genome("g", spec, rng)
        assert len(g.repeat_loci) >= 2
        # the same repeat unit appears at multiple loci
        frags = [g.seq[a:b] for a, b in g.repeat_loci]
        assert len(frags) > len(set(frags)) or len(set(frags)) <= 3

    def test_shared_fragments(self, rng):
        lib = make_shared_library(rng, n_fragments=2, length=200)
        spec = GenomeSpec(length=10000, shared_fraction=0.05, shared_length=200)
        g1 = generate_genome("a", spec, rng, lib)
        g2 = generate_genome("b", spec, rng, lib)
        assert g1.shared_loci and g2.shared_loci
        f1 = {g1.seq[a:b] for a, b in g1.shared_loci}
        assert all(f in lib or any(f == l[:200] for l in lib) for f in f1)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            GenomeSpec(length=10)
        with pytest.raises(ValueError):
            GenomeSpec(repeat_fraction=0.9)


class TestCommunity:
    def test_abundances_normalised(self, rng):
        c = Community.generate(CommunityDesign(n_genomes=5), rng)
        assert c.abundances.sum() == pytest.approx(1.0)
        assert len(c.genomes) == 5

    def test_even_community(self, rng):
        c = Community.generate(CommunityDesign(n_genomes=4, abundance_sigma=0.0), rng)
        assert np.allclose(c.abundances, 0.25)

    def test_presets(self, rng):
        a = arcticsynth_like(rng, n_genomes=3, genome_length=5000)
        w = wa_like(rng, n_genomes=4, genome_length=5000)
        assert len(a.genomes) == 3 and len(w.genomes) == 4
        assert w.design.abundance_sigma > a.design.abundance_sigma

    def test_expected_coverage(self, rng):
        c = Community.generate(CommunityDesign(n_genomes=2, abundance_sigma=0.0), rng)
        cov = c.expected_coverage(1000)
        lengths = np.array([len(g) for g in c.genomes])
        expect = 500 * 300 / lengths
        assert np.allclose(cov, expect)

    def test_genome_by_name(self, rng):
        c = Community.generate(CommunityDesign(n_genomes=2), rng)
        assert c.genome_by_name("genome_1") is c.genomes[1]
        with pytest.raises(KeyError):
            c.genome_by_name("nope")

    def test_design_validation(self):
        with pytest.raises(ValueError):
            CommunityDesign(n_genomes=0)
        with pytest.raises(ValueError):
            CommunityDesign(read_length=5)
        with pytest.raises(ValueError):
            CommunityDesign(read_length=150, insert_mean=100)


class TestSampling:
    def _perfect_community(self, rng, **kw):
        design = CommunityDesign(
            n_genomes=2,
            genome_spec=GenomeSpec(length=5000, repeat_fraction=0, shared_fraction=0),
            abundance_sigma=0.0,
            error_model=PERFECT,
            **kw,
        )
        return Community.generate(design, rng)

    def test_interleaved_pairs(self, rng):
        c = self._perfect_community(rng)
        b = sample_paired_reads(c, 10, rng)
        assert b.paired and len(b) == 20
        assert b.name(0) == "pair0/1" and b.name(1) == "pair0/2"

    def test_read_lengths(self, rng):
        c = self._perfect_community(rng)
        b = sample_paired_reads(c, 50, rng)
        assert (b.lengths() == 150).all()

    def test_reads_come_from_genomes(self, rng):
        c = self._perfect_community(rng)
        b = sample_paired_reads(c, 30, rng)
        genomes = [g.seq for g in c.genomes]
        for i in range(len(b)):
            s = b.seq(i)
            assert any(s in g or revcomp(s) in g for g in genomes)

    def test_mate_orientation(self, rng):
        """Mates face each other: both map to the same genome, opposite
        strands, within the insert distance."""
        c = self._perfect_community(rng)
        b = sample_paired_reads(c, 20, rng)
        for p in range(20):
            r1, r2 = b.seq(2 * p), b.seq(2 * p + 1)
            placed = False
            for g in (g.seq for g in c.genomes):
                i1 = g.find(r1)
                i2 = g.find(revcomp(r2))
                if i1 >= 0 and i2 >= 0:
                    assert 0 <= (i2 + 150) - i1 <= 600
                    placed = True
                    break
                # pair may be on the other strand
                i1 = g.find(revcomp(r1))
                i2 = g.find(r2)
                if i1 >= 0 and i2 >= 0:
                    placed = True
                    break
            assert placed

    def test_abundance_bias(self, rng):
        design = CommunityDesign(
            n_genomes=2, abundance_sigma=0.0, error_model=PERFECT,
            genome_spec=GenomeSpec(length=5000, repeat_fraction=0, shared_fraction=0),
        )
        c = Community.generate(design, rng)
        # force a skewed community
        c = Community(design=c.design, genomes=c.genomes, abundances=np.array([0.9, 0.1]))
        b = sample_paired_reads(c, 300, rng)
        g0 = c.genomes[0].seq
        from_g0 = sum(
            1 for p in range(300) if g0.find(b.seq(2 * p)) >= 0 or g0.find(revcomp(b.seq(2 * p))) >= 0
        )
        assert from_g0 > 200
