"""Unit and property tests for the DNA codec layer."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sequence.dna import (
    BASE_TO_CODE,
    N_CODE,
    complement_base,
    decode,
    encode,
    gc_content,
    hamming_distance,
    is_valid_dna,
    random_dna,
    revcomp,
    revcomp_codes,
)

dna_strings = st.text(alphabet="ACGT", min_size=0, max_size=200)
dna_with_n = st.text(alphabet="ACGTN", min_size=0, max_size=200)


class TestEncodeDecode:
    def test_known_codes(self):
        assert encode("ACGTN").tolist() == [0, 1, 2, 3, 4]

    def test_lowercase_accepted(self):
        assert encode("acgt").tolist() == [0, 1, 2, 3]

    def test_unknown_chars_become_n(self):
        assert encode("AXZ-").tolist() == [0, 4, 4, 4]

    def test_empty(self):
        assert encode("").size == 0
        assert decode(np.empty(0, dtype=np.uint8)) == ""

    @given(dna_with_n)
    def test_roundtrip(self, s):
        assert decode(encode(s)) == s

    def test_decode_clips_out_of_range_codes(self):
        assert decode(np.array([0, 9, 250], dtype=np.uint8)) == "ANN"

    def test_lookup_table_covers_all_bytes(self):
        assert BASE_TO_CODE.shape == (256,)
        assert int(BASE_TO_CODE.max()) == int(N_CODE)


class TestRevcomp:
    def test_known(self):
        assert revcomp("AACG") == "CGTT"

    def test_n_preserved(self):
        assert revcomp("ANT") == "ANT"
        assert revcomp("NAC") == "GTN"

    @given(dna_with_n)
    def test_involution(self, s):
        assert revcomp(revcomp(s)) == s

    @given(dna_strings)
    def test_codes_and_string_agree(self, s):
        assert decode(revcomp_codes(encode(s))) == revcomp(s)

    def test_complement_base(self):
        assert [complement_base(b) for b in "ACGTN"] == ["T", "G", "C", "A", "N"]
        with pytest.raises(ValueError):
            complement_base("X")


class TestPredicates:
    def test_is_valid(self):
        assert is_valid_dna("ACGT")
        assert is_valid_dna("ACGTN")
        assert not is_valid_dna("ACGTN", allow_n=False)
        assert not is_valid_dna("ACGU")

    def test_gc_content(self):
        assert gc_content("GGCC") == 1.0
        assert gc_content("AATT") == 0.0
        assert gc_content("ACGT") == 0.5
        assert gc_content("NNNN") == 0.0
        assert gc_content("") == 0.0

    def test_gc_ignores_n(self):
        assert gc_content("GNNA") == 0.5

    def test_hamming(self):
        assert hamming_distance("ACGT", "ACGT") == 0
        assert hamming_distance("ACGT", "ACGA") == 1
        assert hamming_distance("", "") == 0
        with pytest.raises(ValueError):
            hamming_distance("A", "AA")


class TestRandomDna:
    def test_deterministic(self):
        a = random_dna(100, np.random.default_rng(1))
        b = random_dna(100, np.random.default_rng(1))
        assert a == b

    def test_length_and_alphabet(self):
        s = random_dna(500, np.random.default_rng(2))
        assert len(s) == 500
        assert set(s) <= set("ACGT")

    def test_gc_target(self):
        s = random_dna(20000, np.random.default_rng(3), gc=0.7)
        assert abs(gc_content(s) - 0.7) < 0.02

    def test_gc_validation(self):
        with pytest.raises(ValueError):
            random_dna(10, np.random.default_rng(0), gc=1.5)
