"""Tests for Read and the packed ReadBatch container."""

import numpy as np
import pytest

from repro.sequence.read import DEFAULT_QUAL, Read, ReadBatch


class TestRead:
    def test_default_quals(self):
        r = Read("r", "ACGT")
        assert r.quals == (DEFAULT_QUAL,) * 4

    def test_qual_length_mismatch(self):
        with pytest.raises(ValueError):
            Read("r", "ACGT", (30, 30))

    def test_len(self):
        assert len(Read("r", "ACGTA")) == 5

    def test_reverse_complement(self):
        r = Read("r", "AACG", (10, 20, 30, 40))
        rc = r.reverse_complement()
        assert rc.seq == "CGTT"
        assert rc.quals == (40, 30, 20, 10)

    def test_qual_string_roundtrip(self):
        r = Read("r", "ACG", (0, 20, 41))
        r2 = Read.from_qual_string("r", "ACG", r.qual_string())
        assert r2.quals == r.quals


class TestReadBatch:
    def test_from_reads_accessors(self):
        reads = [Read("a", "ACGT"), Read("b", "GG"), Read("c", "TTTAA")]
        b = ReadBatch.from_reads(reads)
        assert len(b) == 3
        assert b.n_bases == 11
        assert b.seq(0) == "ACGT"
        assert b.seq(1) == "GG"
        assert b.seq(2) == "TTTAA"
        assert b.name(1) == "b"
        assert b.lengths().tolist() == [4, 2, 5]
        assert b.max_read_length() == 5

    def test_from_strings(self):
        b = ReadBatch.from_strings(["AC", "GT"], qual=30)
        assert b.qual_codes(0).tolist() == [30, 30]

    def test_empty(self):
        b = ReadBatch.empty()
        assert len(b) == 0
        assert b.max_read_length() == 0

    def test_read_roundtrip(self):
        reads = [Read("a", "ACGT", (1, 2, 3, 4))]
        b = ReadBatch.from_reads(reads)
        assert b.read(0) == reads[0]

    def test_iter(self):
        b = ReadBatch.from_strings(["AC", "GT", "AA"])
        assert [r.seq for r in b] == ["AC", "GT", "AA"]

    def test_offsets_validation(self):
        bases = np.zeros(4, dtype=np.uint8)
        quals = np.zeros(4, dtype=np.uint8)
        with pytest.raises(ValueError):
            ReadBatch(bases, quals, np.array([0, 2], dtype=np.int64))  # end != 4
        with pytest.raises(ValueError):
            ReadBatch(bases, quals, np.array([0, 3, 2, 4], dtype=np.int64))
        with pytest.raises(ValueError):
            ReadBatch(bases, np.zeros(3, dtype=np.uint8), np.array([0, 4]))

    def test_paired_requires_even(self):
        b = ReadBatch.from_strings(["AC", "GT"], paired=False)
        with pytest.raises(ValueError):
            ReadBatch(b.bases, b.quals, np.array([0, 4], dtype=np.int64), paired=True)

    def test_mate_index(self):
        b = ReadBatch.from_strings(["AC", "GT"], paired=True)
        assert b.mate_index(0) == 1
        assert b.mate_index(1) == 0
        single = ReadBatch.from_strings(["AC"])
        with pytest.raises(ValueError):
            single.mate_index(0)

    def test_subset(self):
        b = ReadBatch.from_strings(["AC", "GGG", "TT", "AAAA"])
        s = b.subset([2, 0])
        assert [r.seq for r in s] == ["TT", "AC"]
        assert s.names == ["r2", "r0"]

    def test_concat(self):
        a = ReadBatch.from_strings(["AC"], paired=False)
        b = ReadBatch.from_strings(["GT", "AA"], paired=True)
        c = ReadBatch.concat([a, b])
        assert [r.seq for r in c] == ["AC", "GT", "AA"]
        assert not c.paired  # mixed pairedness drops the flag

    def test_concat_empty_list(self):
        assert len(ReadBatch.concat([])) == 0

    def test_views_not_copies(self):
        b = ReadBatch.from_strings(["ACGT"])
        v = b.codes(0)
        assert v.base is b.bases or v.base is not None
