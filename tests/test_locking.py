"""ClaimFile tests: exclusivity, crash recovery, and torn-claim handling.

The crash-injection scenarios matter most: a worker that dies holding a
claim must not wedge the store (dead-PID claims are broken), while a
*live* holder must never be displaced.
"""

import json
import multiprocessing as mp
import os
import time

import pytest

from repro.locking import ClaimFile, pid_alive


def _hold_and_exit(path, q):
    claim = ClaimFile(path)
    q.put(claim.acquire())
    os._exit(0)  # crash: no release, no atexit


def _dead_pid() -> int:
    """A PID that provably no longer exists (a reaped child's)."""
    ctx = mp.get_context("fork")
    p = ctx.Process(target=lambda: None)
    p.start()
    p.join()
    assert not pid_alive(p.pid)
    return p.pid


class TestBasics:
    def test_acquire_release(self, tmp_path):
        claim = ClaimFile(tmp_path / "c")
        assert claim.acquire()
        assert claim.held
        assert (tmp_path / "c").exists()
        owner = claim.owner()
        assert owner["pid"] == os.getpid()
        assert owner["token"] == claim.token
        claim.release()
        assert not claim.held
        assert not (tmp_path / "c").exists()

    def test_live_owner_blocks_second_claim(self, tmp_path):
        a, b = ClaimFile(tmp_path / "c"), ClaimFile(tmp_path / "c")
        assert a.acquire()
        assert not b.acquire()
        a.release()
        assert b.acquire()
        b.release()

    def test_acquire_is_idempotent_while_held(self, tmp_path):
        claim = ClaimFile(tmp_path / "c")
        assert claim.acquire()
        assert claim.acquire()
        claim.release()

    def test_context_manager(self, tmp_path):
        with ClaimFile(tmp_path / "c") as claim:
            assert claim.held
        assert not (tmp_path / "c").exists()


class TestCrashRecovery:
    def test_dead_owner_claim_is_broken(self, tmp_path):
        """Crash injection: a child acquires the claim and dies without
        releasing; the next acquirer breaks the stale claim."""
        path = tmp_path / "c"
        ctx = mp.get_context("fork")
        q = ctx.SimpleQueue()
        p = ctx.Process(target=_hold_and_exit, args=(path, q))
        p.start()
        assert q.get() is True  # the child held it
        p.join()
        assert path.exists()  # ...and left it behind
        survivor = ClaimFile(path)
        assert survivor.acquire()
        assert survivor.owner()["pid"] == os.getpid()
        survivor.release()

    def test_synthetic_dead_pid_claim_is_broken(self, tmp_path):
        path = tmp_path / "c"
        path.write_text(json.dumps({"pid": _dead_pid(), "token": "x", "time": 0}))
        claim = ClaimFile(path)
        assert claim.acquire()
        claim.release()

    def test_fresh_torn_claim_is_respected(self, tmp_path):
        """A claim mid-write (unreadable, new) is NOT broken — its owner
        may still be between open and write."""
        path = tmp_path / "c"
        path.write_bytes(b"")  # torn: created but payload never landed
        assert not ClaimFile(path).acquire()

    def test_old_torn_claim_is_broken(self, tmp_path):
        path = tmp_path / "c"
        path.write_bytes(b"{trunc")
        old = time.time() - 60.0
        os.utime(path, (old, old))
        claim = ClaimFile(path)
        assert claim.acquire()
        claim.release()

    def test_release_does_not_steal_rebroken_claim(self, tmp_path):
        """If our claim was broken and re-taken, release must not unlink
        the new owner's file."""
        path = tmp_path / "c"
        a = ClaimFile(path)
        assert a.acquire()
        # simulate a breaker: replace the payload with another owner's
        path.write_text(json.dumps({"pid": os.getpid(), "token": "other", "time": 0}))
        a.release()
        assert path.exists()  # still the other owner's
        assert json.loads(path.read_text())["token"] == "other"


class TestPidAlive:
    def test_self_is_alive(self):
        assert pid_alive(os.getpid())

    def test_nonpositive_pids(self):
        assert not pid_alive(0)
        assert not pid_alive(-1)

    def test_reaped_child_is_dead(self):
        assert not pid_alive(_dead_pid())
