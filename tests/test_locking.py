"""ClaimFile tests: exclusivity, crash recovery, and torn-claim handling.

The crash-injection scenarios matter most: a worker that dies holding a
claim must not wedge the store (dead-PID claims are broken), while a
*live* holder must never be displaced.
"""

import json
import multiprocessing as mp
import os
import time

import pytest

from repro.locking import ClaimFile, pid_alive


def _hold_and_exit(path, q):
    claim = ClaimFile(path)
    q.put(claim.acquire())
    os._exit(0)  # crash: no release, no atexit


def _dead_pid() -> int:
    """A PID that provably no longer exists (a reaped child's)."""
    ctx = mp.get_context("fork")
    p = ctx.Process(target=lambda: None)
    p.start()
    p.join()
    assert not pid_alive(p.pid)
    return p.pid


class TestBasics:
    def test_acquire_release(self, tmp_path):
        claim = ClaimFile(tmp_path / "c")
        assert claim.acquire()
        assert claim.held
        assert (tmp_path / "c").exists()
        owner = claim.owner()
        assert owner["pid"] == os.getpid()
        assert owner["token"] == claim.token
        claim.release()
        assert not claim.held
        assert not (tmp_path / "c").exists()

    def test_live_owner_blocks_second_claim(self, tmp_path):
        a, b = ClaimFile(tmp_path / "c"), ClaimFile(tmp_path / "c")
        assert a.acquire()
        assert not b.acquire()
        a.release()
        assert b.acquire()
        b.release()

    def test_acquire_is_idempotent_while_held(self, tmp_path):
        claim = ClaimFile(tmp_path / "c")
        assert claim.acquire()
        assert claim.acquire()
        claim.release()

    def test_context_manager(self, tmp_path):
        with ClaimFile(tmp_path / "c") as claim:
            assert claim.held
        assert not (tmp_path / "c").exists()


class TestCrashRecovery:
    def test_dead_owner_claim_is_broken(self, tmp_path):
        """Crash injection: a child acquires the claim and dies without
        releasing; the next acquirer breaks the stale claim."""
        path = tmp_path / "c"
        ctx = mp.get_context("fork")
        q = ctx.SimpleQueue()
        p = ctx.Process(target=_hold_and_exit, args=(path, q))
        p.start()
        assert q.get() is True  # the child held it
        p.join()
        assert path.exists()  # ...and left it behind
        survivor = ClaimFile(path)
        assert survivor.acquire()
        assert survivor.owner()["pid"] == os.getpid()
        survivor.release()

    def test_synthetic_dead_pid_claim_is_broken(self, tmp_path):
        path = tmp_path / "c"
        path.write_text(json.dumps({"pid": _dead_pid(), "token": "x", "time": 0}))
        claim = ClaimFile(path)
        assert claim.acquire()
        claim.release()

    def test_fresh_torn_claim_is_respected(self, tmp_path):
        """A claim mid-write (unreadable, new) is NOT broken — its owner
        may still be between open and write."""
        path = tmp_path / "c"
        path.write_bytes(b"")  # torn: created but payload never landed
        assert not ClaimFile(path).acquire()

    def test_old_torn_claim_is_broken(self, tmp_path):
        path = tmp_path / "c"
        path.write_bytes(b"{trunc")
        old = time.time() - 60.0
        os.utime(path, (old, old))
        claim = ClaimFile(path)
        assert claim.acquire()
        claim.release()

    def test_release_does_not_steal_rebroken_claim(self, tmp_path):
        """If our claim was broken and re-taken, release must not unlink
        the new owner's file."""
        path = tmp_path / "c"
        a = ClaimFile(path)
        assert a.acquire()
        # simulate a breaker: replace the payload with another owner's
        path.write_text(json.dumps({"pid": os.getpid(), "token": "other", "time": 0}))
        a.release()
        assert path.exists()  # still the other owner's
        assert json.loads(path.read_text())["token"] == "other"


class TestGraceWindowBoundary:
    """The torn-claim grace window is a hard boundary: an unreadable
    claim just *under* the window may still be mid-write and must be
    respected; just *over* it, the owner can never be identified and
    the claim must break."""

    def test_just_under_grace_is_respected(self, tmp_path):
        from repro.locking import _TORN_GRACE_S

        path = tmp_path / "c"
        path.write_bytes(b"")
        t = time.time() - (_TORN_GRACE_S - 1.0)
        os.utime(path, (t, t))
        assert not ClaimFile(path).acquire()
        assert path.exists()

    def test_just_over_grace_is_broken(self, tmp_path):
        from repro.locking import _TORN_GRACE_S

        path = tmp_path / "c"
        path.write_bytes(b"")
        t = time.time() - (_TORN_GRACE_S + 1.0)
        os.utime(path, (t, t))
        claim = ClaimFile(path)
        assert claim.acquire()
        claim.release()
        assert not path.exists()


class TestStaleTokenRelease:
    def test_release_with_stale_token_leaves_new_claim(self, tmp_path):
        """A releaser whose token no longer matches the payload (claim
        broken and re-taken while it was descheduled) must not unlink."""
        path = tmp_path / "c"
        a = ClaimFile(path)
        assert a.acquire()
        b = ClaimFile(path)
        # simulate: a's owner "dies" from b's point of view, b breaks it
        path.write_text(json.dumps({"pid": _dead_pid(), "token": a.token, "time": 0}))
        assert b.acquire()
        a.held = True  # a believes it still holds the claim
        a.release()
        assert path.exists()
        assert json.loads(path.read_text())["token"] == b.token
        b.release()
        assert not path.exists()


def _race_breaker(path, barrier, q):
    claim = ClaimFile(path)
    barrier.wait()  # both breakers observe the stale claim together
    got = claim.acquire()
    q.put((os.getpid(), got, claim.token))
    if got:
        time.sleep(0.5)  # stay alive long enough for the loser to retry
        claim.release()
    os._exit(0)


class TestBreakerRace:
    """Two *live* breakers racing to break one stale claim: exactly one
    may win, and the loser must never unlink the winner's fresh claim
    (the TOCTOU the sidecar breaker lock exists to close)."""

    def test_two_live_breakers_exactly_one_wins(self, tmp_path):
        path = tmp_path / "c"
        path.write_text(json.dumps({"pid": _dead_pid(), "token": "x", "time": 0}))
        ctx = mp.get_context("fork")
        barrier = ctx.Barrier(2)
        q = ctx.SimpleQueue()
        procs = [
            ctx.Process(target=_race_breaker, args=(path, barrier, q))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        results = [q.get() for _ in range(2)]
        for p in procs:
            p.join()
        winners = [r for r in results if r[1]]
        assert len(winners) == 1, results
        # while the winner held it, the file carried the winner's token
        # (released after its sleep, so it is gone now)
        assert not path.exists()

    def test_slow_breaker_cannot_steal_fresh_claim(self, tmp_path):
        """Deterministic replay of the worst-case interleave: B decided
        the claim was stale, then A broke and re-acquired it.  B's break
        attempt must re-verify under the sidecar and back off."""
        path = tmp_path / "c"
        path.write_text(json.dumps({"pid": _dead_pid(), "token": "x", "time": 0}))
        a, b = ClaimFile(path), ClaimFile(path)
        assert a._stale() and b._stale()  # both observed the dead owner
        assert a.acquire()  # A wins the break
        # B acts on its stale observation directly (the old unlink-and-
        # retry would remove A's live claim here)
        assert not b._break_and_reacquire()
        assert path.exists()
        assert json.loads(path.read_text())["token"] == a.token
        a.release()

    def test_crashed_breaker_sidecar_does_not_wedge(self, tmp_path):
        """A breaker that died holding the sidecar must not block
        breaking forever: a dead-PID sidecar is removed and the next
        acquire succeeds."""
        path = tmp_path / "c"
        path.write_text(json.dumps({"pid": _dead_pid(), "token": "x", "time": 0}))
        sidecar = path.with_name(path.name + ".break")
        sidecar.write_text(json.dumps({"pid": _dead_pid(), "time": 0}))
        claim = ClaimFile(path)
        assert not claim.acquire()  # first pass: clears the corpse sidecar
        assert not sidecar.exists()
        assert claim.acquire()  # second pass: breaks the stale claim
        claim.release()

    def test_live_sidecar_holder_is_respected(self, tmp_path):
        path = tmp_path / "c"
        path.write_text(json.dumps({"pid": _dead_pid(), "token": "x", "time": 0}))
        sidecar = path.with_name(path.name + ".break")
        sidecar.write_text(json.dumps({"pid": os.getpid(), "time": time.time()}))
        claim = ClaimFile(path)
        assert not claim.acquire()  # mid-break by a live peer: back off
        assert sidecar.exists()
        assert path.exists()  # and the stale claim was not touched
        sidecar.unlink()


class TestPidAlive:
    def test_self_is_alive(self):
        assert pid_alive(os.getpid())

    def test_nonpositive_pids(self):
        assert not pid_alive(0)
        assert not pid_alive(-1)

    def test_reaped_child_is_dead(self):
        assert not pid_alive(_dead_pid())
