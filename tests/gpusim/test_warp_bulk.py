"""Tests for the bulk/lockstep warp accounting helpers."""

import numpy as np
import pytest

from repro.gpusim.counters import KernelCounters
from repro.gpusim.memory import DeviceAllocator
from repro.gpusim.warp import Warp


@pytest.fixture
def warp():
    return Warp(KernelCounters())


@pytest.fixture
def alloc():
    return DeviceAllocator(1 << 20)


class TestAccountBulkStore:
    def test_counts(self, warp):
        warp.account_bulk_store(n_inst=100, active_slots=2000, transactions=500)
        c = warp.counters
        assert c.warp_inst == 100
        assert c.thread_inst == 2000
        assert c.predicated_off == 3200 - 2000
        assert c.global_st_inst == 100
        assert c.global_st_transactions == 500


class TestGatherWordBytes:
    def test_byte_granular_many_more_transactions(self, warp, alloc):
        d = alloc.to_device(np.zeros(100_000, dtype=np.uint8))
        starts = np.arange(32, dtype=np.int64) * 3000  # fully scattered

        warp.global_gather_span(d, starts, 24, word_bytes=8)
        word_txn = warp.counters.global_ld_transactions
        word_inst = warp.counters.global_ld_inst
        assert word_inst == 3  # ceil(24/8)
        assert word_txn == 3 * 32  # per word, every lane its own sector

        w2 = Warp(KernelCounters())
        w2.global_gather_span(d, starts, 24, word_bytes=1)
        byte_txn = w2.counters.global_ld_transactions
        byte_inst = w2.counters.global_ld_inst
        assert byte_inst == 24
        # each byte instruction touches up to 32 sectors, but consecutive
        # bytes of a lane share sectors, so per-byte txns stay 32
        assert byte_txn == 24 * 32
        assert byte_txn > word_txn

    def test_single_lane_gather(self, warp, alloc):
        d = alloc.to_device(np.zeros(1000, dtype=np.uint8))
        with warp.single_lane(0):
            warp.global_gather_span(d, np.zeros(32, dtype=np.int64), 21, word_bytes=8)
        c = warp.counters
        assert c.global_ld_inst == 3
        # 21 contiguous bytes from one lane: 1 sector per word access
        assert c.global_ld_transactions <= 4
        assert c.predication_ratio > 0.9

    def test_zero_bytes_free(self, warp, alloc):
        d = alloc.to_device(np.zeros(10, dtype=np.uint8))
        warp.global_gather_span(d, np.zeros(32, dtype=np.int64), 0)
        assert warp.counters.warp_inst == 0
