"""Unit tests for the parallel warp-execution engine and its shared memory.

The contract under test: for *any* worker count, a launch sharded across
the engine produces a :class:`LaunchResult` bit-identical to sequential
execution — same merged counters, same per-warp instruction ordering —
and all device mutation lands in the parent's buffers.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.gpusim.engine import WarpEngine, default_workers, shard_ranges
from repro.gpusim.kernel import GpuContext
from repro.gpusim.memory import DeviceAllocator
from repro.gpusim.shmem import (
    attach_shared_array,
    create_shared_array,
    shared_memory_available,
)

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on this host"
)


class TestShardRanges:
    def test_even_split(self):
        assert shard_ranges(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_to_early_shards(self):
        assert shard_ranges(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_shards_than_warps(self):
        assert shard_ranges(2, 8) == [(0, 1), (1, 2)]

    def test_single_shard(self):
        assert shard_ranges(5, 1) == [(0, 5)]

    def test_covers_every_warp_exactly_once(self):
        for n_warps in (1, 7, 32, 100):
            for n_shards in (1, 2, 3, 8):
                ranges = shard_ranges(n_warps, n_shards)
                ids = [w for lo, hi in ranges for w in range(lo, hi)]
                assert ids == list(range(n_warps))

    def test_default_workers_positive(self):
        assert default_workers() >= 1


@needs_shm
class TestSharedNDArray:
    def test_create_zeroed_and_named(self):
        arr = create_shared_array(16, np.int64)
        try:
            assert arr.shape == (16,)
            assert not arr.any()
            assert arr.segment_name
        finally:
            arr.unlink()

    def test_pickle_roundtrip_attaches_same_segment(self):
        arr = create_shared_array(8, np.float64)
        try:
            arr[:] = np.arange(8)
            clone = pickle.loads(pickle.dumps(arr))
            assert clone.segment_name == arr.segment_name
            np.testing.assert_array_equal(clone, arr)
            clone[3] = 99.0  # mutation is visible through the original
            assert arr[3] == 99.0
        finally:
            arr.unlink()

    def test_views_pickle_by_value(self):
        arr = create_shared_array(8, np.int32)
        try:
            view = arr[2:5]
            view[:] = 7
            clone = pickle.loads(pickle.dumps(view))
            np.testing.assert_array_equal(clone, view)
            clone[0] = -1  # by-value copy: original untouched
            assert arr[2] == 7
        finally:
            arr.unlink()

    def test_attach_by_name(self):
        arr = create_shared_array(4, np.uint8)
        try:
            arr[:] = [1, 2, 3, 4]
            other = attach_shared_array(arr.segment_name, 4, np.uint8)
            np.testing.assert_array_equal(other, arr)
        finally:
            arr.unlink()

    def test_double_unlink_is_harmless(self):
        arr = create_shared_array(4, np.uint8)
        arr.unlink()
        arr.unlink()


@needs_shm
class TestSharedAllocator:
    def test_alloc_is_shared_and_accounted(self):
        alloc = DeviceAllocator(1 << 20, shared=True)
        darr = alloc.alloc(100, np.int64)
        assert getattr(darr.data, "_shm_root", False)
        assert alloc.bytes_in_use > 0
        alloc.release_shared()

    def test_host_array_shared_but_not_accounted(self):
        alloc = DeviceAllocator(1 << 20, shared=True)
        arr = alloc.host_array(10, np.int64)
        assert getattr(arr, "_shm_root", False)
        assert alloc.bytes_in_use == 0
        alloc.release_shared()

    def test_sequential_host_array_is_plain(self):
        alloc = DeviceAllocator(1 << 20, shared=False)
        arr = alloc.host_array(10, np.int64)
        assert not hasattr(arr, "_shm_root")


def _count_kernel(warp, warp_id, out):
    """Each warp writes its id and issues warp_id+1 extra instructions."""
    for _ in range(warp_id + 1):
        warp.int_op()
    with warp.single_lane(0):
        warp.global_store(out, warp_id, warp_id * 10)


@needs_shm
class TestWarpEngineLaunch:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parallel_launch_matches_sequential(self, workers):
        n_warps = 10
        with GpuContext(workers=1) as seq_ctx:
            out = seq_ctx.alloc(n_warps, np.int64)
            expect = seq_ctx.launch("count", _count_kernel, n_warps, out)
            expect_data = out.data.copy()
        with GpuContext(workers=workers) as ctx:
            out = ctx.alloc(n_warps, np.int64)
            got = ctx.launch("count", _count_kernel, n_warps, out)
            np.testing.assert_array_equal(out.data, expect_data)
        assert got.counters == expect.counters
        assert got.per_warp_inst == expect.per_warp_inst
        assert got.n_warps == expect.n_warps
        assert got.timing == expect.timing

    def test_per_warp_order_is_warp_id_order(self):
        # warp_id+1 int ops plus the store make ordering observable
        with GpuContext(workers=2) as ctx:
            out = ctx.alloc(6, np.int64)
            res = ctx.launch("count", _count_kernel, 6, out)
        assert list(res.per_warp_inst) == sorted(res.per_warp_inst)

    def test_engine_reused_across_launches(self):
        with GpuContext(workers=2) as ctx:
            out = ctx.alloc(4, np.int64)
            ctx.launch("a", _count_kernel, 4, out)
            engine = ctx._engine
            ctx.launch("b", _count_kernel, 4, out)
            assert ctx._engine is engine

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            GpuContext(workers=0)
        with pytest.raises(ValueError):
            WarpEngine(0)

    def test_single_warp_runs_inline(self):
        # one warp -> no sharding benefit; must not spin up the pool
        with GpuContext(workers=4) as ctx:
            out = ctx.alloc(1, np.int64)
            ctx.launch("one", _count_kernel, 1, out)
            assert out.data[0] == 0
