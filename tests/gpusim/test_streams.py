"""Streams, events and the placed timeline (repro.gpusim.streams).

The contract under test: ops on one stream serialise, ops on different
streams overlap unless ordered by events, ``serialize=True`` collapses
all concurrency, and the chrome-trace export is structurally valid.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.gpusim import GpuContext, StreamTimeline
from repro.gpusim.streams import HOST_LANE, Event


class TestStreamPlacement:
    def test_ops_on_one_stream_serialize(self):
        tl = StreamTimeline()
        s = tl.stream("s0")
        tl.push(s, "a", "kernel", 1.0)
        tl.push(s, "b", "kernel", 2.0)
        assert [op.start_s for op in tl.ops] == [0.0, 1.0]
        assert tl.end_s() == 3.0

    def test_ops_on_different_streams_overlap(self):
        tl = StreamTimeline()
        tl.push(tl.stream("s0"), "a", "kernel", 2.0)
        tl.push(tl.stream("s1"), "b", "h2d", 1.5)
        assert [op.start_s for op in tl.ops] == [0.0, 0.0]
        assert tl.makespan() == 2.0  # not 3.5: they overlap

    def test_event_orders_across_streams(self):
        tl = StreamTimeline()
        ev = tl.push(tl.stream("copy"), "H2D", "h2d", 1.0)
        tl.push(tl.stream("compute"), "K", "kernel", 2.0, deps=(ev,))
        kernel_op = tl.ops[-1]
        assert kernel_op.start_s == 1.0
        assert tl.makespan() == 3.0

    def test_record_and_wait(self):
        tl = StreamTimeline()
        a, b = tl.stream("a"), tl.stream("b")
        tl.push(a, "x", "kernel", 4.0)
        ev = a.record()
        assert ev.recorded and ev.time_s == 4.0
        b.wait(ev)
        tl.push(b, "y", "kernel", 1.0)
        assert tl.ops[-1].start_s == 4.0
        assert b.synchronize() == 5.0

    def test_waiting_on_unrecorded_event_raises(self):
        tl = StreamTimeline()
        with pytest.raises(ValueError, match="unrecorded"):
            tl.stream("s").wait(Event())
        with pytest.raises(ValueError, match="unrecorded"):
            tl.push(tl.stream("s"), "op", "kernel", 1.0, deps=(Event(),))

    def test_elapsed_since(self):
        tl = StreamTimeline()
        s = tl.stream("s")
        e0 = s.record()
        tl.push(s, "x", "kernel", 2.5)
        e1 = s.record()
        assert e1.elapsed_since(e0) == 2.5
        with pytest.raises(ValueError):
            e1.elapsed_since(Event())

    def test_negative_duration_rejected(self):
        tl = StreamTimeline()
        with pytest.raises(ValueError, match="negative"):
            tl.push(tl.stream("s"), "op", "kernel", -1.0)

    def test_serialize_collapses_concurrency(self):
        tl = StreamTimeline(serialize=True)
        tl.push(tl.stream("s0"), "a", "kernel", 2.0)
        tl.push(tl.stream("s1"), "b", "h2d", 1.5)
        tl.push(tl.stream("s0"), "c", "d2h", 0.5)
        # every op chained globally: makespan == serial sum
        assert tl.makespan() == pytest.approx(4.0)
        starts = [op.start_s for op in tl.ops]
        assert starts == [0.0, 2.0, 3.5]


class TestHostSlices:
    def test_host_slice_measures_and_places(self):
        tl = StreamTimeline()
        with tl.host_slice("pack") as h:
            sum(range(10000))
        assert h.event is not None and h.event.recorded
        (op,) = tl.ops
        assert op.cat == "host" and op.lane == HOST_LANE
        assert op.dur_s >= 0.0
        assert tl.lane_busy_s(HOST_LANE) == op.dur_s

    def test_host_slice_respects_deps(self):
        tl = StreamTimeline()
        ev = tl.push(tl.stream("compute"), "K", "kernel", 3.0)
        with tl.host_slice("unpack", "host.drive", deps=(ev,)):
            pass
        assert tl.ops[-1].start_s == 3.0

    def test_device_span_excludes_host_ops(self):
        tl = StreamTimeline()
        with tl.host_slice("pack"):
            pass
        assert tl.device_span_s() == 0.0
        tl.push(tl.stream("s"), "K", "kernel", 2.0)
        assert tl.device_span_s() == pytest.approx(2.0)


class TestChromeTrace:
    def test_trace_structure(self, tmp_path):
        tl = StreamTimeline()
        ev = tl.push(tl.stream("copy0"), "H2D", "h2d", 1e-3, nbytes=4096)
        tl.push(tl.stream("compute"), "K", "kernel", 2e-3, deps=(ev,))
        with tl.host_slice("stage"):
            pass
        trace = tl.chrome_trace()
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        lanes = {e["args"]["name"]: e["tid"] for e in meta}
        assert set(lanes) == {"copy0", "compute", HOST_LANE}
        # host lanes get the lowest tids so they render on top
        assert lanes[HOST_LANE] < lanes["compute"]
        k = next(e for e in slices if e["name"] == "K")
        assert k["ts"] == pytest.approx(1e3) and k["dur"] == pytest.approx(2e3)
        h2d = next(e for e in slices if e["name"] == "H2D")
        assert h2d["args"]["nbytes"] == 4096

        path = tmp_path / "trace.json"
        tl.save_chrome_trace(path)
        assert json.loads(path.read_text()) == trace


def _noop_kernel(warp, warp_id, out):
    warp.global_store(out, warp_id, 1)


class TestContextAsyncApi:
    def test_auto_engine_resolves_to_batched(self):
        with GpuContext() as ctx:
            assert ctx.engine == "auto" and ctx.engine_mode == "batched"

    def test_to_device_async_accounts_and_places(self):
        with GpuContext(overlap="on") as ctx:
            host = np.arange(1024, dtype=np.int64)
            darr, ev = ctx.to_device_async(host, ctx.stream("copy0"))
            assert np.array_equal(darr.data, host)
            assert ctx.h2d_bytes == host.nbytes == ctx.transfer_bytes
            assert ev.recorded and ev.time_s == ctx.synchronize()
            (op,) = ctx.timeline.ops
            assert op.cat == "h2d" and op.nbytes == host.nbytes

    def test_from_device_regions_async_charges_only_spans(self):
        with GpuContext(overlap="on") as ctx:
            darr = ctx.to_device(np.arange(1000, dtype=np.int32))
            spans, ev = ctx.from_device_regions_async(
                darr, [(0, 10), (500, 520)], ctx.stream("copy0")
            )
            assert [s.tolist() for s in spans] == [
                list(range(10)), list(range(500, 520))
            ]
            assert ctx.d2h_bytes == 30 * 4  # span bytes only, not 4000
            assert ev.recorded

    def test_launch_async_places_modelled_kernel_time(self):
        with GpuContext(engine="sequential", overlap="on") as ctx:
            out = ctx.alloc(4, np.int64)
            upl = ctx.stream("copy0").record()
            result, ev = ctx.launch_async(
                "k", _noop_kernel, 4, out, stream=ctx.stream("compute"),
                deps=(upl,),
            )
            assert result.time_s > 0
            op = ctx.timeline.ops[-1]
            assert op.cat == "kernel" and op.dur_s == result.time_s
            assert ctx.synchronize() == pytest.approx(op.end_s)

    def test_export_trace(self, tmp_path):
        with GpuContext(overlap="on") as ctx:
            ctx.to_device_async(np.zeros(8), ctx.stream("copy0"))
            path = tmp_path / "t.json"
            ctx.export_trace(path)
            assert "traceEvents" in json.loads(path.read_text())

    def test_overlap_validation(self):
        with pytest.raises(ValueError, match="overlap"):
            GpuContext(overlap="maybe")
        with pytest.raises(ValueError, match="n_streams"):
            GpuContext(n_streams=0)

    def test_overlap_off_context_serializes_timeline(self):
        with GpuContext(overlap="off") as ctx:
            ctx.to_device_async(np.zeros(1 << 20, dtype=np.uint8),
                                ctx.stream("copy0"))
            ctx.to_device_async(np.zeros(1 << 20, dtype=np.uint8),
                                ctx.stream("copy1"))
            total = sum(op.dur_s for op in ctx.timeline.ops)
            assert ctx.synchronize() == pytest.approx(total)
