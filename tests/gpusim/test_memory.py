"""Tests for the device allocator and sector/transaction counting."""

import numpy as np
import pytest

from repro.gpusim.memory import (
    DeviceAllocator,
    DeviceOutOfMemory,
    count_sectors,
)


class TestAllocator:
    def test_alloc_and_capacity(self):
        a = DeviceAllocator(10_000)
        d = a.alloc(100, np.int64)
        assert d.nbytes == 800
        assert a.bytes_in_use >= 800
        assert len(d) == 100

    def test_alignment(self):
        a = DeviceAllocator(10_000)
        d1 = a.alloc(1, np.uint8)
        d2 = a.alloc(1, np.uint8)
        assert d2.base_addr - d1.base_addr == DeviceAllocator.ALIGN

    def test_oom(self):
        a = DeviceAllocator(1000)
        with pytest.raises(DeviceOutOfMemory):
            a.alloc(2000, np.uint8)

    def test_free_and_reset(self):
        a = DeviceAllocator(1024)
        d = a.alloc(512, np.uint8)
        a.free(d)
        a.alloc(512, np.uint8)  # fits again
        a.reset()
        assert a.bytes_in_use == 0

    def test_high_water(self):
        a = DeviceAllocator(10_000)
        d = a.alloc(4000, np.uint8)
        a.free(d)
        a.alloc(100, np.uint8)
        assert a.high_water_bytes >= 4000

    def test_addresses_never_alias(self):
        a = DeviceAllocator(10_000)
        d1 = a.alloc(100, np.uint8)
        a.free(d1)
        d2 = a.alloc(100, np.uint8)
        assert d2.base_addr > d1.base_addr

    def test_to_device_copies(self):
        a = DeviceAllocator(10_000)
        host = np.arange(10, dtype=np.int32)
        d = a.to_device(host)
        host[0] = 99
        assert d.data[0] == 0

    def test_zero_initialised(self):
        a = DeviceAllocator(10_000)
        assert (a.alloc(50, np.int64).data == 0).all()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DeviceAllocator(0)


class TestSectorCounting:
    def test_empty(self):
        assert count_sectors(np.array([]), 4) == 0

    def test_single_access(self):
        assert count_sectors(np.array([0]), 4) == 1

    def test_unit_stride_coalesces(self):
        # 32 lanes x 4B contiguous = 128B = 4 sectors
        addrs = np.arange(32) * 4
        assert count_sectors(addrs, 4) == 4

    def test_byte_stride_coalesces(self):
        # 32 lanes x 1B contiguous = 32B = 1 sector
        assert count_sectors(np.arange(32), 1) == 1

    def test_broadcast_is_one(self):
        assert count_sectors(np.zeros(32, dtype=np.int64), 4) == 1

    def test_random_gather_worst_case(self):
        # 32 lanes, each in its own sector
        addrs = np.arange(32) * 1000
        assert count_sectors(addrs, 4) == 32

    def test_straddling_item(self):
        # an 8-byte item at offset 28 crosses the 32B boundary
        assert count_sectors(np.array([28]), 8) == 2

    def test_large_item_spans_many_sectors(self):
        assert count_sectors(np.array([0]), 100) == 4  # ceil(100/32)

    def test_duplicate_sectors_merge(self):
        addrs = np.array([0, 4, 8, 1000])
        assert count_sectors(addrs, 4) == 2
