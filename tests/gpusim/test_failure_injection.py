"""Failure-injection tests: the simulator and driver fail loudly, not wrong."""

import numpy as np
import pytest

from repro.core.config import LocalAssemblyConfig
from repro.core.driver import GpuLocalAssembler
from repro.core.tasks import RIGHT, ExtensionTask, TaskSet
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import GpuContext
from repro.gpusim.memory import DeviceOutOfMemory
from repro.sequence.dna import encode, random_dna


def _fat_task(rng, n_reads=64, read_len=150):
    genome = random_dna(2000, rng)
    reads = tuple(
        encode(genome[(i * 29) % 1800 : (i * 29) % 1800 + read_len])
        for i in range(n_reads)
    )
    quals = tuple(np.full(read_len, 40, dtype=np.uint8) for _ in range(n_reads))
    return ExtensionTask(cid=0, side=RIGHT, contig=encode(genome[:200]),
                         reads=reads, quals=quals)


def _tiny_device(mem_bytes: int) -> DeviceSpec:
    return DeviceSpec(
        name="tiny", n_sms=80, schedulers_per_sm=4, clock_ghz=1.53,
        global_mem_bytes=mem_bytes, mem_bandwidth_bytes=900e9,
    )


class TestOutOfMemory:
    def test_single_oversized_task_raises(self, rng):
        """A task that cannot fit even alone must raise, not truncate."""
        task = _fat_task(rng)
        device = _tiny_device(64 * 1024)  # 64 KiB: table alone needs ~380 KiB
        with pytest.raises(DeviceOutOfMemory):
            GpuLocalAssembler(LocalAssemblyConfig(), device=device).run(TaskSet([task]))

    def test_oom_message_is_informative(self):
        ctx = GpuContext(device=_tiny_device(1024))
        with pytest.raises(DeviceOutOfMemory, match="exceeds device memory"):
            ctx.alloc(10_000, np.int64)

    def test_allocator_state_survives_failed_alloc(self):
        ctx = GpuContext(device=_tiny_device(4096))
        d = ctx.alloc(256, np.uint8)
        with pytest.raises(DeviceOutOfMemory):
            ctx.alloc(10_000, np.uint8)
        # prior allocation untouched; new small allocs still work
        assert d.data.size == 256
        ctx.alloc(256, np.uint8)


class TestKernelErrors:
    def test_kernel_exception_propagates(self):
        ctx = GpuContext()

        def bad_kernel(warp, warp_id):
            raise RuntimeError("kernel bug")

        with pytest.raises(RuntimeError, match="kernel bug"):
            ctx.launch("bad", bad_kernel, 1)

    def test_failed_launch_not_logged(self):
        ctx = GpuContext()

        def bad_kernel(warp, warp_id):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            ctx.launch("bad", bad_kernel, 1)
        assert ctx.launches == []


class TestConfigValidation:
    def test_bad_k_ordering(self):
        with pytest.raises(ValueError):
            LocalAssemblyConfig(k_init=10, k_min=13)
        with pytest.raises(ValueError):
            LocalAssemblyConfig(k_init=70, k_max=63)

    def test_bad_steps(self):
        with pytest.raises(ValueError):
            LocalAssemblyConfig(k_step=0)
        with pytest.raises(ValueError):
            LocalAssemblyConfig(max_walk_len=0)
        with pytest.raises(ValueError):
            LocalAssemblyConfig(dominance_ratio=0.5)
