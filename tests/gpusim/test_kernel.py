"""Tests for kernel launching, timing model and the roofline analysis."""

import numpy as np
import pytest

from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import V100, DeviceSpec
from repro.gpusim.kernel import GpuContext
from repro.gpusim.roofline import MEMORY_WALLS, render_roofline, roofline_point
from repro.gpusim.timing import TimingModel


def _noop_kernel(warp, warp_id):
    warp.int_op(10)


def _mem_kernel(warp, warp_id, d):
    warp.global_load(d, (np.arange(32) * 64) % len(d))


class TestDevice:
    def test_v100_peak_matches_paper(self):
        # The paper's roofline ceiling: 489.6 warp GIPS.
        assert V100.peak_warp_gips == pytest.approx(489.6)

    def test_occupancy_bounds(self):
        assert V100.occupancy(0) == pytest.approx(0.02)
        assert V100.occupancy(10**9) == 1.0
        assert 0 < V100.occupancy(100) < 1


class TestLaunch:
    def test_counters_accumulate_across_warps(self):
        ctx = GpuContext()
        res = ctx.launch("k", _noop_kernel, 5)
        assert res.counters.warp_inst == 50
        assert res.counters.n_warps_launched == 5

    def test_launch_log(self):
        ctx = GpuContext()
        ctx.launch("a", _noop_kernel, 1)
        ctx.launch("b", _noop_kernel, 2)
        assert [l.name for l in ctx.launches] == ["a", "b"]
        assert ctx.total_kernel_time() > 0
        merged = ctx.merged_counters()
        assert merged.warp_inst == 30

    def test_transfer_accounting(self):
        ctx = GpuContext()
        d = ctx.to_device(np.zeros(1000, dtype=np.int64))
        ctx.from_device(d)
        assert ctx.transfer_bytes == 16000
        assert ctx.transfer_time_s > 0

    def test_kernel_args_passed(self):
        ctx = GpuContext()
        d = ctx.to_device(np.zeros(4096, dtype=np.int32))
        res = ctx.launch("m", _mem_kernel, 3, d)
        assert res.counters.global_ld_transactions > 0


class TestTimingModel:
    def test_more_instructions_more_time(self):
        tm = TimingModel(V100)
        a, b = KernelCounters(), KernelCounters()
        a.warp_inst = 1000
        b.warp_inst = 2000
        assert tm.kernel_time(b, 10**6) > tm.kernel_time(a, 10**6)

    def test_low_occupancy_slower(self):
        tm = TimingModel(V100)
        c = KernelCounters()
        c.warp_inst = 10**6
        assert tm.kernel_time(c, 10) > tm.kernel_time(c, 10**6)

    def test_memory_bound_detection(self):
        tm = TimingModel(V100)
        c = KernelCounters()
        c.warp_inst = 10
        c.global_ld_transactions = 10**6
        assert tm.kernel_timing(c, 10**6).bound == "memory"
        c2 = KernelCounters()
        c2.warp_inst = 10**8
        c2.global_ld_transactions = 1
        assert tm.kernel_timing(c2, 10**6).bound == "compute"

    def test_launch_overhead_floor(self):
        tm = TimingModel(V100)
        assert tm.kernel_time(KernelCounters(), 1) >= V100.kernel_launch_overhead_s

    def test_transfer_time_scales(self):
        tm = TimingModel(V100)
        assert tm.transfer_time(10**9) > tm.transfer_time(10**3)


class TestRoofline:
    def _result(self, warp_inst=1000, thread_inst=None, ld_txn=100, ld_inst=10):
        ctx = GpuContext()
        c = KernelCounters()
        c.warp_inst = warp_inst
        c.thread_inst = thread_inst if thread_inst is not None else warp_inst * 32
        c.predicated_off = 32 * warp_inst - c.thread_inst
        c.global_ld_transactions = ld_txn
        c.global_ld_inst = ld_inst
        from repro.gpusim.kernel import LaunchResult

        timing = ctx.timing_model.kernel_timing(c, 10**6)
        return LaunchResult(name="t", n_warps=10**6, counters=c, timing=timing)

    def test_intensity(self):
        p = roofline_point(self._result(warp_inst=1000, ld_txn=100))
        assert p.intensity == pytest.approx(10.0)
        assert p.ldst_intensity == pytest.approx(0.1)

    def test_no_predication_gap_when_full(self):
        p = roofline_point(self._result())
        assert p.nonpredicated_gips == pytest.approx(p.gips)
        assert p.predication_gap == pytest.approx(1.0)

    def test_predication_gap(self):
        p = roofline_point(self._result(warp_inst=1000, thread_inst=1000))
        assert p.predication_gap == pytest.approx(32.0)
        assert p.predication_ratio == pytest.approx(31 / 32)

    def test_nearest_wall(self):
        p = roofline_point(self._result(ld_txn=320, ld_inst=10))  # 1/32
        assert p.nearest_wall() == "random/stride-8"
        p2 = roofline_point(self._result(ld_txn=40, ld_inst=10))  # 1/4
        assert p2.nearest_wall() == "stride-1"

    def test_render(self):
        p = roofline_point(self._result())
        text = render_roofline([p], V100)
        assert "489.6" in text
        assert "t" in text
        for wall in MEMORY_WALLS:
            assert wall.split("@")[0] in text
