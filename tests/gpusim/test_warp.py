"""Tests for the warp execution context: masks, memory ops, intrinsics."""

import numpy as np
import pytest

from repro.gpusim.counters import KernelCounters
from repro.gpusim.memory import DeviceAllocator
from repro.gpusim.warp import Warp


@pytest.fixture
def alloc():
    return DeviceAllocator(1 << 20)


@pytest.fixture
def warp():
    return Warp(KernelCounters())


class TestMasks:
    def test_initially_all_active(self, warp):
        assert warp.active_count == 32

    def test_where_restricts_and_restores(self, warp):
        cond = np.arange(32) < 10
        with warp.where(cond):
            assert warp.active_count == 10
            with warp.where(np.arange(32) < 5):
                assert warp.active_count == 5
            assert warp.active_count == 10
        assert warp.active_count == 32

    def test_single_lane(self, warp):
        with warp.single_lane(3):
            assert warp.active_count == 1
            assert warp.mask[3]

    def test_predication_counted(self, warp):
        with warp.single_lane(0):
            warp.int_op(10)
        c = warp.counters
        assert c.warp_inst == 10
        assert c.thread_inst == 10
        assert c.predicated_off == 310
        assert c.predication_ratio == pytest.approx(31 / 32)

    def test_scalar_cond_broadcasts(self, warp):
        with warp.where(False):
            assert warp.active_count == 0
            assert not warp.any_active


class TestGlobalMemory:
    def test_load_gather(self, warp, alloc):
        d = alloc.to_device(np.arange(100, dtype=np.int64))
        vals = warp.global_load(d, np.arange(32) * 2)
        assert vals.tolist() == list(range(0, 64, 2))
        assert warp.counters.global_ld_inst == 1

    def test_load_inactive_lanes_zero(self, warp, alloc):
        d = alloc.to_device(np.arange(100, dtype=np.int64))
        with warp.where(np.arange(32) < 2):
            vals = warp.global_load(d, np.full(32, 50))
        assert vals[0] == 50 and vals[2] == 0

    def test_store_scatter(self, warp, alloc):
        d = alloc.to_device(np.zeros(64, dtype=np.int64))
        warp.global_store(d, np.arange(32), np.arange(32))
        assert d.data[:32].tolist() == list(range(32))

    def test_store_respects_mask(self, warp, alloc):
        d = alloc.to_device(np.zeros(64, dtype=np.int64))
        with warp.where(np.arange(32) % 2 == 0):
            warp.global_store(d, np.arange(32), 7)
        assert d.data[0] == 7 and d.data[1] == 0

    def test_coalesced_vs_random_transactions(self, warp, alloc):
        d = alloc.to_device(np.zeros(4096, dtype=np.int32))
        warp.global_load(d, np.arange(32))  # unit stride: 4 sectors
        coalesced = warp.counters.global_ld_transactions
        warp.global_load(d, np.arange(32) * 64)  # scattered: 32 sectors
        scattered = warp.counters.global_ld_transactions - coalesced
        assert coalesced == 4
        assert scattered == 32

    def test_span_load(self, warp, alloc):
        d = alloc.to_device(np.arange(100, dtype=np.uint8))
        span = warp.global_load_span(d, 10, 70)
        assert span.tolist() == list(range(10, 80))
        # 70 bytes: 3 instructions (ceil(70/32)), 3 sectors at most
        assert warp.counters.global_ld_inst == 3
        assert warp.counters.global_ld_transactions <= 4

    def test_span_store(self, warp, alloc):
        d = alloc.to_device(np.ones(100, dtype=np.int64))
        warp.global_store_span(d, 5, 10, -1)
        assert (d.data[5:15] == -1).all()
        assert d.data[4] == 1 and d.data[15] == 1
        assert warp.counters.global_st_inst == 1

    def test_span_empty(self, warp, alloc):
        d = alloc.to_device(np.arange(10, dtype=np.uint8))
        assert warp.global_load_span(d, 0, 0).size == 0
        warp.global_store_span(d, 0, 0, 0)
        assert warp.counters.warp_inst == 0  # zero-length spans are free

    def test_gather_span_counts(self, warp, alloc):
        d = alloc.to_device(np.zeros(10_000, dtype=np.uint8))
        starts = np.arange(32, dtype=np.int64) * 300  # far apart
        warp.global_gather_span(d, starts, 21)
        # 3 word-loads, transactions >= 32 (each lane its own sector)
        assert warp.counters.global_ld_inst == 3
        assert warp.counters.global_ld_transactions >= 32


class TestAtomics:
    def test_cas_basic(self, warp, alloc):
        d = alloc.to_device(np.full(8, -1, dtype=np.int64))
        with warp.single_lane(0):
            old = warp.atomic_cas(d, 3, -1, 42)
        assert old[0] == -1
        assert d.data[3] == 42

    def test_cas_failure_returns_current(self, warp, alloc):
        d = alloc.to_device(np.full(8, 5, dtype=np.int64))
        with warp.single_lane(0):
            old = warp.atomic_cas(d, 0, -1, 42)
        assert old[0] == 5
        assert d.data[0] == 5

    def test_cas_contention_single_winner(self, warp, alloc):
        """All 32 lanes CAS the same empty slot: exactly one wins and the
        losers observe the winner's value (deterministic lane order)."""
        d = alloc.to_device(np.full(4, -1, dtype=np.int64))
        old = warp.atomic_cas(d, np.zeros(32, dtype=np.int64), -1, np.arange(32) + 100)
        assert old[0] == -1  # lane 0 wins
        assert (old[1:] == 100).all()  # losers see lane 0's value
        assert d.data[0] == 100
        assert warp.counters.labels["atomic_conflicts"] == 31

    def test_atomic_add_accumulates(self, warp, alloc):
        d = alloc.to_device(np.zeros(4, dtype=np.int64))
        warp.atomic_add(d, np.zeros(32, dtype=np.int64), 1)
        assert d.data[0] == 32

    def test_atomic_add_returns_old(self, warp, alloc):
        d = alloc.to_device(np.zeros(4, dtype=np.int64))
        old = warp.atomic_add(d, np.zeros(32, dtype=np.int64), 1)
        assert old.tolist() == list(range(32))

    def test_atomic_max(self, warp, alloc):
        d = alloc.to_device(np.zeros(4, dtype=np.int64))
        warp.atomic_max(d, np.zeros(32, dtype=np.int64), np.arange(32))
        assert d.data[0] == 31


class TestVectorisedAtomicEdgeCases:
    """The vectorised atomics must keep the exact ascending-lane-order
    serial semantics, including across mixed unique/duplicate addresses."""

    def _serial_reference(self, data, idx, compare, value, op):
        flat = data.copy()
        old = np.zeros(32, dtype=data.dtype)
        for lane in range(32):
            cur = flat[idx[lane]]
            old[lane] = cur
            if op == "add":
                flat[idx[lane]] += value[lane]
            elif op == "max":
                flat[idx[lane]] = max(cur, value[lane])
            elif op == "cas" and cur == compare[lane]:
                flat[idx[lane]] = value[lane]
        return flat, old

    def test_add_old_values_interleaved_addresses(self, warp, alloc):
        rng = np.random.default_rng(99)
        init = rng.integers(0, 50, 8).astype(np.int64)
        idx = rng.integers(0, 8, 32).astype(np.int64)
        value = rng.integers(-5, 10, 32).astype(np.int64)
        d = alloc.to_device(init)
        ref_flat, ref_old = self._serial_reference(init, idx, None, value, "add")
        old = warp.atomic_add(d, idx, value)
        assert old.tolist() == ref_old.tolist()
        assert d.data.tolist() == ref_flat.tolist()

    def test_add_float_keeps_serial_rounding(self, warp, alloc):
        # 1e16 + 1.0 rounds away in float64: the serial chain's result is
        # order-sensitive and the vectorised path must reproduce it.
        init = np.zeros(2, dtype=np.float64)
        idx = np.zeros(32, dtype=np.int64)
        value = np.full(32, 1.0)
        value[0] = 1e16
        d = alloc.to_device(init)
        ref_flat, ref_old = self._serial_reference(init, idx, None, value, "add")
        old = warp.atomic_add(d, idx, value)
        assert old.tolist() == ref_old.tolist()
        assert d.data.tolist() == ref_flat.tolist()

    def test_cas_duplicate_addresses_mixed_compares(self, warp, alloc):
        # Lanes 0-15 CAS slot 0 expecting -1 (lane 0 wins); lanes 16-31
        # CAS slot 1 expecting lane 16's *written* value (so lane 17 sees
        # the chained effect and wins the second round).
        init = np.array([-1, -1, 7], dtype=np.int64)
        idx = np.array([0] * 16 + [1] * 16, dtype=np.int64)
        compare = np.array([-1] * 16 + [-1] + [100 + 16] * 15, dtype=np.int64)
        value = 100 + np.arange(32, dtype=np.int64)
        d = alloc.to_device(init)
        ref_flat, ref_old = self._serial_reference(init, idx, compare, value, "cas")
        old = warp.atomic_cas(d, idx, compare, value)
        assert old.tolist() == ref_old.tolist()
        assert d.data.tolist() == ref_flat.tolist()
        assert d.data[1] == 117  # lane 17 chained off lane 16's write
        assert warp.counters.labels["atomic_conflicts"] == 30

    def test_cas_all_unique_addresses_no_conflicts(self, warp, alloc):
        d = alloc.to_device(np.full(32, -1, dtype=np.int64))
        old = warp.atomic_cas(d, np.arange(32), -1, np.arange(32) * 2)
        assert (old == -1).all()
        assert d.data.tolist() == (np.arange(32) * 2).tolist()
        assert "atomic_conflicts" not in warp.counters.labels

    def test_max_duplicate_addresses_running_max(self, warp, alloc):
        rng = np.random.default_rng(5)
        init = rng.integers(0, 30, 4).astype(np.int64)
        idx = rng.integers(0, 4, 32).astype(np.int64)
        value = rng.integers(0, 60, 32).astype(np.int64)
        d = alloc.to_device(init)
        ref_flat, ref_old = self._serial_reference(init, idx, None, value, "max")
        old = warp.atomic_max(d, idx, value)
        assert old.tolist() == ref_old.tolist()
        assert d.data.tolist() == ref_flat.tolist()

    def test_atomics_respect_active_mask(self, warp, alloc):
        d = alloc.to_device(np.zeros(4, dtype=np.int64))
        with warp.where(np.arange(32) < 3):
            old = warp.atomic_add(d, np.zeros(32, dtype=np.int64), 1)
        assert d.data[0] == 3
        assert old.tolist() == [0, 1, 2] + [0] * 29

    def test_lane_ids_cached_and_read_only(self, warp):
        a = warp.lane_ids()
        b = warp.lane_ids()
        assert a is b  # cached module-level array, no per-call allocation
        assert not a.flags.writeable
        assert a.tolist() == list(range(32))


class TestIntrinsics:
    def test_shfl_broadcast(self, warp):
        vals = np.arange(32)
        out = warp.shfl(vals, 7)
        assert (out == 7).all()
        assert warp.counters.shuffle_inst == 1

    def test_ballot(self, warp):
        mask = warp.ballot(np.arange(32) < 3)
        assert mask == 0b111

    def test_ballot_respects_active_mask(self, warp):
        with warp.where(np.arange(32) >= 2):
            mask = warp.ballot(np.arange(32) < 3)
        assert mask == 0b100

    def test_match_any(self, warp):
        vals = np.zeros(32, dtype=np.int64)
        vals[::2] = 1
        masks = warp.match_any(vals)
        even = sum(1 << i for i in range(0, 32, 2))
        odd = sum(1 << i for i in range(1, 32, 2))
        assert masks[0] == even and masks[1] == odd

    def test_match_any_inactive_zero(self, warp):
        with warp.where(np.arange(32) < 4):
            masks = warp.match_any(np.zeros(32, dtype=np.int64))
        assert masks[0] == 0b1111 and masks[10] == 0

    def test_sync_counts(self, warp):
        warp.sync()
        assert warp.counters.sync_inst == 1

    def test_lane_value_shape_validation(self, warp, alloc):
        d = alloc.to_device(np.zeros(8, dtype=np.int64))
        with pytest.raises(ValueError):
            warp.global_load(d, np.arange(5))


class TestInstructionClasses:
    def test_breakdown(self, warp, alloc):
        d = alloc.to_device(np.zeros(64, dtype=np.int64))
        warp.int_op(3)
        warp.fp_op(2)
        warp.control_op(1)
        warp.local_load(2)
        warp.local_store(1)
        warp.global_load(d, np.arange(32))
        b = warp.counters.breakdown()
        assert b["int_inst"] == 3
        assert b["fp_inst"] == 2
        assert b["control_inst"] == 1
        assert b["local_memory_inst"] == 3
        assert b["global_memory_inst"] == 1
        assert warp.counters.local_transactions > 0
