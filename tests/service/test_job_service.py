"""Job-service tests: state machine, admission, scheduling, resume, cache.

The multi-tenant layer must never change results: every assertion about
outputs compares against a solo ``run_pipeline`` on the same reads and
config (bit-identity), and every failure-injection assertion checks the
service degrades (sheds, defers, recomputes) instead of crashing.
"""

import json
import threading

import numpy as np
import pytest

from repro.pipeline import PipelineConfig, run_pipeline
from repro.sequence.community import arcticsynth_like, sample_paired_reads
from repro.sequence.fastq import load_read_batch, save_read_batch
from repro.service import (
    AssemblyService,
    BudgetExceededError,
    Job,
    JobQueue,
    JobSpec,
    JobState,
    QueueFullError,
    ServiceConfig,
)

GB = 1 << 30


@pytest.fixture(scope="module")
def reads_file(tmp_path_factory):
    rng = np.random.default_rng(4242)
    comm = arcticsynth_like(rng, n_genomes=2, genome_length=5000)
    reads = sample_paired_reads(comm, 300, rng)
    path = tmp_path_factory.mktemp("reads") / "reads.fastq"
    save_read_batch(path, reads)
    return path


@pytest.fixture(scope="module")
def solo_result(reads_file):
    """Reference: the same dataset assembled without the service."""
    reads = load_read_batch(reads_file, paired=True)
    cfg = PipelineConfig(local_assembly_mode="gpu", run_scaffolding=False)
    return run_pipeline(reads, cfg)


GPU_JOB = {"local_assembly_mode": "gpu", "run_scaffolding": False}


def contig_seqs(job_dir):
    from repro.sequence.fastq import read_fasta

    return [seq for _, seq in read_fasta(job_dir / "contigs.fasta")]


class TestJobModel:
    def test_roundtrip(self):
        spec = JobSpec(reads="r.fastq", tenant="t", config={"k_series": [21]})
        job = Job(job_id="job-x", spec=spec)
        back = Job.from_dict(job.to_dict())
        assert back.spec == spec
        assert back.state is JobState.QUEUED

    def test_legal_path(self):
        job = Job(job_id="j", spec=JobSpec(reads="r"))
        for state in (JobState.STAGING, JobState.RUNNING, JobState.DONE):
            job.transition(state)
        assert job.terminal

    def test_illegal_transition(self):
        job = Job(job_id="j", spec=JobSpec(reads="r"))
        with pytest.raises(ValueError, match="illegal job transition"):
            job.transition(JobState.DONE)

    def test_terminal_is_sticky(self):
        job = Job(job_id="j", spec=JobSpec(reads="r"))
        job.transition(JobState.CANCELLED)
        with pytest.raises(ValueError):
            job.transition(JobState.STAGING)

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown pipeline config keys"):
            JobSpec(reads="r", config={"insert_mean": 5.0})

    def test_recovery_edge(self):
        job = Job(job_id="j", spec=JobSpec(reads="r"))
        job.transition(JobState.STAGING)
        job.transition(JobState.RUNNING)
        job.transition(JobState.QUEUED)  # recovery
        assert job.state is JobState.QUEUED


class TestQueue:
    def test_submission_order(self, tmp_path):
        q = JobQueue(tmp_path)
        ids = [q.submit(JobSpec(reads=f"r{i}")).job_id for i in range(3)]
        assert [j.job_id for j in q.jobs()] == ids

    def test_torn_record_skipped(self, tmp_path):
        q = JobQueue(tmp_path)
        q.submit(JobSpec(reads="r"))
        bad = q.jobs_dir / "job-torn"
        bad.mkdir()
        (bad / "job.json").write_text("{not json")
        assert len(q.jobs()) == 1

    def test_queue_full_sheds(self, tmp_path):
        q = JobQueue(tmp_path)
        q.submit(JobSpec(reads="r"), max_queued=1)
        with pytest.raises(QueueFullError):
            q.submit(JobSpec(reads="r2"), max_queued=1)

    def test_budget_rejection(self, tmp_path):
        q = JobQueue(tmp_path)
        with pytest.raises(BudgetExceededError):
            q.submit(
                JobSpec(reads="r", tenant="t", mem_budget=2 * GB),
                tenant_budget=1 * GB,
                mem_demand=2 * GB,
            )

    def test_cancel_queued(self, tmp_path):
        q = JobQueue(tmp_path)
        job = q.submit(JobSpec(reads="r"))
        assert q.cancel(job.job_id).state is JobState.CANCELLED
        # idempotent on terminal jobs
        assert q.cancel(job.job_id).state is JobState.CANCELLED

    def test_recover_requeues_midflight(self, tmp_path):
        q = JobQueue(tmp_path)
        job = q.submit(JobSpec(reads="r"))
        job.transition(JobState.STAGING)
        job.transition(JobState.RUNNING)
        q.save(job)
        requeued = q.recover()
        assert [j.job_id for j in requeued] == [job.job_id]
        back = q.get(job.job_id)
        assert back.state is JobState.QUEUED and back.attempt == 2


class TestService:
    def test_concurrent_jobs_bit_identical(
        self, tmp_path, reads_file, solo_result
    ):
        with AssemblyService(
            tmp_path / "svc", ServiceConfig(n_gpus=3)
        ) as svc:
            jobs = [
                svc.submit(reads_file, tenant=f"t{i}", config=GPU_JOB)
                for i in range(3)
            ]
            final = {j.job_id: j for j in svc.drain()}
        solo = [c.seq for c in solo_result.contigs]
        for job in jobs:
            done = final[job.job_id]
            assert done.state is JobState.DONE, done.error
            assert contig_seqs(svc.queue.job_dir(job.job_id)) == solo
            assert done.metrics["queue_wait_s"] is not None
            assert "stage_seconds" in done.metrics

    def test_report_json(self, tmp_path, reads_file):
        with AssemblyService(tmp_path / "svc", ServiceConfig(n_gpus=1)) as svc:
            job = svc.submit(reads_file, config=GPU_JOB)
            svc.drain()
            report = json.loads(
                (svc.queue.job_dir(job.job_id) / "report.json").read_text()
            )
        assert report["state"] == "done"
        assert report["metrics"]["gpu_slot"] == 0
        assert report["metrics"]["cache_hit"] is False
        assert report["metrics"]["n_contigs"] > 0
        assert "local assembly" in report["metrics"]["stage_seconds"]

    def test_cache_hit_skips_prefix_bit_identical(self, tmp_path, reads_file):
        root = tmp_path / "svc"
        with AssemblyService(root, ServiceConfig(n_gpus=1)) as svc:
            first = svc.submit(reads_file, config=GPU_JOB)
            svc.drain()
            second = svc.submit(reads_file, tenant="other", config=GPU_JOB)
            final = {j.job_id: j for j in svc.drain()}
        f, s = final[first.job_id], final[second.job_id]
        assert f.metrics["cache_hit"] is False
        assert s.metrics["cache_hit"] is True
        # the memoised run skipped the dBG prefix entirely
        assert "k-mer analysis" not in s.metrics["stage_seconds"]
        assert "contig generation" not in s.metrics["stage_seconds"]
        q = JobQueue(root)
        assert contig_seqs(q.job_dir(f.job_id)) == contig_seqs(
            q.job_dir(s.job_id)
        )

    def test_corrupt_cache_entry_recomputed(self, tmp_path, reads_file):
        root = tmp_path / "svc"
        with AssemblyService(root, ServiceConfig(n_gpus=1)) as svc:
            first = svc.submit(reads_file, config=GPU_JOB)
            svc.drain()
            key = svc.queue.get(first.job_id).metrics["checkpoint_key"]
            npz = svc.cache.dir_for(key) / "contigs_checkpoint.npz"
            npz.write_bytes(npz.read_bytes()[:100])  # truncate = corrupt
            second = svc.submit(reads_file, config=GPU_JOB)
            final = {j.job_id: j for j in svc.drain()}
        s = final[second.job_id]
        assert s.state is JobState.DONE, s.error
        assert s.metrics["cache_hit"] is False  # corrupt probes as a miss
        q = JobQueue(root)
        assert contig_seqs(q.job_dir(first.job_id)) == contig_seqs(
            q.job_dir(second.job_id)
        )

    def test_admission_queue_full(self, tmp_path, reads_file):
        with AssemblyService(
            tmp_path / "svc", ServiceConfig(n_gpus=1, max_queued=1)
        ) as svc:
            svc.submit(reads_file, config=GPU_JOB)
            with pytest.raises(QueueFullError):
                svc.submit(reads_file, config=GPU_JOB)

    def test_admission_budget_rejection(self, tmp_path, reads_file):
        cfg = ServiceConfig(n_gpus=2, tenant_budgets={"capped": 1 * GB})
        with AssemblyService(tmp_path / "svc", cfg) as svc:
            with pytest.raises(BudgetExceededError):
                svc.submit(
                    reads_file, tenant="capped", mem_budget=2 * GB,
                    config=GPU_JOB,
                )
            # within budget is admitted
            job = svc.submit(
                reads_file, tenant="capped", mem_budget=GB // 2,
                config=GPU_JOB,
            )
            final = {j.job_id: j for j in svc.drain()}
        assert final[job.job_id].state is JobState.DONE

    def test_tenant_budget_defers_but_completes(self, tmp_path, reads_file):
        # two jobs each demanding the whole tenant budget: they must run
        # one after the other, and both must finish
        cfg = ServiceConfig(n_gpus=2, tenant_budgets={"t": 1 * GB})
        with AssemblyService(tmp_path / "svc", cfg) as svc:
            jobs = [
                svc.submit(reads_file, tenant="t", mem_budget=1 * GB,
                           config=GPU_JOB)
                for _ in range(2)
            ]
            final = {j.job_id: j for j in svc.drain()}
        for job in jobs:
            assert final[job.job_id].state is JobState.DONE

    def test_cancel_before_run(self, tmp_path, reads_file):
        root = tmp_path / "svc"
        with AssemblyService(root, ServiceConfig(n_gpus=1)) as svc:
            job = svc.submit(reads_file, config=GPU_JOB)
            svc.cancel(job.job_id)
            final = {j.job_id: j for j in svc.drain()}
        assert final[job.job_id].state is JobState.CANCELLED
        assert not (JobQueue(root).job_dir(job.job_id) / "contigs.fasta").exists()

    def test_missing_reads_fails_cleanly(self, tmp_path):
        with AssemblyService(tmp_path / "svc", ServiceConfig(n_gpus=1)) as svc:
            job = svc.submit(tmp_path / "nope.fastq", config=GPU_JOB)
            final = {j.job_id: j for j in svc.drain()}
        failed = final[job.job_id]
        assert failed.state is JobState.FAILED
        assert failed.error

    def test_resume_after_restart(self, tmp_path, reads_file, solo_result):
        root = tmp_path / "svc"
        # first service instance: one job runs to DONE (checkpoint cached)
        with AssemblyService(root, ServiceConfig(n_gpus=1)) as svc1:
            done = svc1.submit(reads_file, config=GPU_JOB)
            svc1.drain()
            # second job is left mid-RUNNING, as if the process was killed
            victim = svc1.submit(reads_file, config=GPU_JOB)
            rec = svc1.queue.get(victim.job_id)
            rec.transition(JobState.STAGING)
            rec.transition(JobState.RUNNING)
            svc1.queue.save(rec)
        # a fresh instance adopts the service dir
        with AssemblyService(root) as svc2:
            requeued = svc2.recover()
            assert [j.job_id for j in requeued] == [victim.job_id]
            final = {j.job_id: j for j in svc2.drain()}
        resumed = final[victim.job_id]
        assert resumed.state is JobState.DONE, resumed.error
        assert resumed.attempt == 2
        # the resumed attempt rode the checkpoint: dBG prefix skipped
        assert resumed.metrics["cache_hit"] is True
        assert "k-mer analysis" not in resumed.metrics["stage_seconds"]
        # and the output is bit-identical to the solo reference
        solo = [c.seq for c in solo_result.contigs]
        assert contig_seqs(JobQueue(root).job_dir(victim.job_id)) == solo
        assert contig_seqs(JobQueue(root).job_dir(done.job_id)) == solo

    def test_service_config_persisted(self, tmp_path):
        cfg = ServiceConfig(n_gpus=4, max_queued=7, tenant_budgets={"a": GB})
        with AssemblyService(tmp_path / "svc", cfg):
            pass
        loaded = ServiceConfig.load(tmp_path / "svc")
        assert loaded == cfg

    def test_serve_forever_stops(self, tmp_path):
        with AssemblyService(tmp_path / "svc", ServiceConfig(n_gpus=1)) as svc:
            stop = threading.Event()
            t = threading.Thread(target=svc.serve_forever, args=(stop,))
            t.start()
            stop.set()
            t.join(timeout=10.0)
            assert not t.is_alive()
