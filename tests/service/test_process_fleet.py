"""Process-fleet tests: real worker processes over the shared job store.

The fleet knob (``workers=process``) must change *who* runs a job, never
*what* it produces: contigs stay bit-identical to a thread fleet and to a
solo ``run_pipeline``.  The cross-process run claim must make double
execution impossible and crash recovery must respect live claimants.
"""

import json
import os

import numpy as np
import pytest

from repro.locking import ClaimFile
from repro.pipeline import PipelineConfig, run_pipeline
from repro.sequence.community import arcticsynth_like, sample_paired_reads
from repro.sequence.fastq import load_read_batch, save_read_batch
from repro.service import AssemblyService, JobQueue, JobSpec, JobState, ServiceConfig
from repro.service.service import WORKER_MODES, execute_job
from repro.service.cache import ResultCache
from repro.gpusim.device import V100

GB = 1 << 30

GPU_JOB = {"local_assembly_mode": "gpu", "run_scaffolding": False}


@pytest.fixture(scope="module")
def reads_file(tmp_path_factory):
    rng = np.random.default_rng(808)
    comm = arcticsynth_like(rng, n_genomes=2, genome_length=5000)
    reads = sample_paired_reads(comm, 300, rng)
    path = tmp_path_factory.mktemp("reads") / "reads.fastq"
    save_read_batch(path, reads)
    return path


@pytest.fixture(scope="module")
def solo_contigs(reads_file):
    reads = load_read_batch(reads_file, paired=True)
    cfg = PipelineConfig(local_assembly_mode="gpu", run_scaffolding=False)
    return [c.seq for c in run_pipeline(reads, cfg).contigs]


def contig_seqs(job_dir):
    from repro.sequence.fastq import read_fasta

    return [seq for _, seq in read_fasta(job_dir / "contigs.fasta")]


def _drain(root, workers, reads_file, n_jobs=2):
    cfg = ServiceConfig(n_gpus=2, workers=workers)
    with AssemblyService(root, cfg) as svc:
        jobs = [
            svc.submit(reads_file, tenant=f"t{i}", config=GPU_JOB)
            for i in range(n_jobs)
        ]
        final = {j.job_id: j for j in svc.drain()}
        return svc, [final[j.job_id] for j in jobs]


class TestConfigKnob:
    def test_workers_roundtrip(self, tmp_path):
        cfg = ServiceConfig(workers="process")
        cfg.save(tmp_path)
        assert ServiceConfig.load(tmp_path).workers == "process"

    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers"):
            ServiceConfig(workers="coroutine")

    def test_modes_cover_both_fleets(self):
        assert WORKER_MODES == ("thread", "process")


class TestProcessFleet:
    def test_bit_identity_and_real_processes(
        self, tmp_path, reads_file, solo_contigs
    ):
        svc, jobs = _drain(tmp_path / "proc", "process", reads_file)
        assert all(j.state is JobState.DONE for j in jobs)
        for job in jobs:
            assert contig_seqs(svc.queue.job_dir(job.job_id)) == solo_contigs
            # the job ran in a pool worker, not in this process
            assert job.metrics["worker_pid"] != os.getpid()

    def test_matches_thread_fleet(self, tmp_path, reads_file):
        svc_t, jobs_t = _drain(tmp_path / "thread", "thread", reads_file, 1)
        svc_p, jobs_p = _drain(tmp_path / "process", "process", reads_file, 1)
        assert jobs_t[0].state is jobs_p[0].state is JobState.DONE
        assert contig_seqs(svc_t.queue.job_dir(jobs_t[0].job_id)) == contig_seqs(
            svc_p.queue.job_dir(jobs_p[0].job_id)
        )
        # thread workers share the parent's pid; process workers do not
        assert jobs_t[0].metrics["worker_pid"] == os.getpid()
        assert jobs_p[0].metrics["worker_pid"] != os.getpid()

    def test_report_written(self, tmp_path, reads_file):
        svc, jobs = _drain(tmp_path / "rep", "process", reads_file, 1)
        report = json.loads(
            (svc.queue.job_dir(jobs[0].job_id) / "report.json").read_text()
        )
        assert report["state"] == "done"
        assert report["metrics"]["n_contigs"] > 0


class TestRunClaim:
    def _queued_job(self, root, reads_file):
        queue = JobQueue(root)
        job = queue.submit(JobSpec(reads=str(reads_file), config=dict(GPU_JOB)))
        return queue, job

    def test_double_claim_prevented(self, tmp_path, reads_file):
        queue, job = self._queued_job(tmp_path, reads_file)
        held = queue.claim(job.job_id)
        assert held is not None
        # a second worker cannot claim, and execute_job refuses to run
        assert queue.claim(job.job_id) is None
        cache = ResultCache(tmp_path / "cache")
        execute_job(queue, cache, V100, job.job_id, 0, GB)
        assert queue.get(job.job_id).state is JobState.QUEUED  # untouched
        held.release()
        execute_job(queue, cache, V100, job.job_id, 0, GB)
        assert queue.get(job.job_id).state is JobState.DONE

    def test_recover_respects_live_claim(self, tmp_path, reads_file):
        queue, job = self._queued_job(tmp_path, reads_file)
        job.transition(JobState.STAGING)
        job.transition(JobState.RUNNING)
        queue.save(job)
        held = queue.claim(job.job_id)  # "another live daemon" (us)
        assert queue.recover() == []
        assert queue.get(job.job_id).state is JobState.RUNNING
        held.release()

    def test_recover_breaks_dead_claim(self, tmp_path, reads_file):
        import multiprocessing as mp

        queue, job = self._queued_job(tmp_path, reads_file)
        job.transition(JobState.STAGING)
        job.transition(JobState.RUNNING)
        queue.save(job)
        # a worker that died mid-run: claim names a reaped child's pid
        p = mp.get_context("fork").Process(target=lambda: None)
        p.start()
        p.join()
        queue.claim_path(job.job_id).write_text(
            json.dumps({"pid": p.pid, "token": "dead", "time": 0})
        )
        requeued = queue.recover()
        assert [j.job_id for j in requeued] == [job.job_id]
        back = queue.get(job.job_id)
        assert back.state is JobState.QUEUED
        assert back.attempt == job.attempt + 1
        # the re-queued job is claimable again (stale claim broken)
        claim = queue.claim(job.job_id)
        assert claim is not None
        claim.release()
